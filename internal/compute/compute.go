// Package compute is the deterministic intra-point compute plane: a
// bounded worker pool offering Future-style offload for *pure,
// value-identical* functions, plus a fork-join Map for data-parallel
// kernels.
//
// The simulation core (simnet) executes protocol handlers on one
// goroutine in virtual time, so every CPU-heavy pure derivation — SHA-256
// digests, Merkle builds, Reed–Solomon stripe encode/decode, bundle body
// verification — serializes onto the event loop and burns exactly one
// core per experiment point. The latency window between a message being
// *scheduled* on the network and being *delivered* to its receiver is
// free parallelism: the value the receiver will derive is already fully
// determined by the immutable message contents. This package exploits
// that window without touching the determinism contract:
//
//   - Offloaded closures must be pure: they read only immutable data
//     captured at launch time and return a value. They must not touch
//     simnet, node state, RNGs, clocks, or any lazily-memoized accessor
//     (Hash()/Digest()/VerifyBody()/... — those write memo fields and
//     would race with the event loop). The purecompute analyzer
//     (tools/analyzers/purecompute) enforces this statically.
//   - Results are forced only at deterministic join points inside the
//     event loop — the same program points that computed the value
//     inline before. Forcing blocks the event loop without advancing
//     virtual time, so same-seed delivery order, terminal output, and
//     replay trace hashes are byte-identical for any worker count.
//   - Worker count 0 (a nil *Pool) degrades every offload to a lazy
//     inline thunk evaluated at the join point: no goroutines, no
//     channels, bit-for-bit the pre-offload execution. This is the
//     default under tests and lint.
//
// Memo installation happens at Force time on the event-loop goroutine,
// never from workers; the happens-before edge between a worker's write
// of the result and the forcer's read is the closed done channel.
package compute

import (
	"sync"
	"sync/atomic"
)

// Speculative is implemented by wire messages whose CPU-heavy pure
// derivations can start when the message is scheduled on the network.
// simnet.Send calls Precompute once per successfully scheduled delivery;
// implementations must be cheap, idempotent (the same message pointer is
// multicast to many recipients), and must capture every input by value
// on the calling goroutine — the offloaded closure may not read mutable
// or lazily-memoized state.
type Speculative interface {
	Precompute(p *Pool)
}

// PoolProvider is implemented by runtime contexts (simnet's per-node
// env.Context) that carry a compute pool. Handlers that want fork-join
// parallelism discover the pool with PoolOf(ctx).
type PoolProvider interface {
	ComputePool() *Pool
}

// PoolOf extracts the pool from a context-like value. It returns nil —
// meaning "run inline" — when the value does not provide one.
func PoolOf(v any) *Pool {
	if pp, ok := v.(PoolProvider); ok {
		return pp.ComputePool()
	}
	return nil
}

// queueFactor bounds the task backlog per worker. When the queue is
// full, Go degrades to a lazy inline future instead of blocking the
// event loop: backpressure never stalls the simulation, it only sheds
// speculation.
const queueFactor = 64

// Pool is a bounded worker pool for pure compute. A nil *Pool is valid
// and means "inline": every method degrades to direct execution. One
// pool is safely shared by concurrently running experiment points
// (env.Parallel): tasks from different points interleave freely because
// pure closures share no state.
//
// Two task lanes keep the fork-join path responsive: Map helpers ride
// the priority lane, speculative offloads the bulk lane. Without the
// split, a Map issued by the event loop would queue its helpers behind
// thousands of tiny speculative tasks and the big data-parallel kernels
// (stripe encode, body verification) would effectively run serially.
type Pool struct {
	workers int
	tasks   chan func() // bulk lane: speculative offloads (Go)
	prio    chan func() // priority lane: fork-join helpers (Map)
	wg      sync.WaitGroup
	closed  atomic.Bool

	offloaded atomic.Uint64 // tasks accepted by workers
	inlined   atomic.Uint64 // offload attempts degraded to inline (queue full)
	stolen    atomic.Uint64 // offloaded futures reclaimed inline at Force
}

// NewPool starts a pool with the given number of workers. workers <= 0
// returns nil (the inline pool), matching the -workers 0 default.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		return nil
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), workers*queueFactor),
		prio:    make(chan func(), workers*queueFactor),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for {
				// Drain the priority lane first, then take whichever
				// lane delivers. Both lanes close together in Close.
				select {
				case t, ok := <-p.prio:
					if !ok {
						p.drainBulk()
						return
					}
					t()
					continue
				default:
				}
				select {
				case t, ok := <-p.prio:
					if !ok {
						p.drainBulk()
						return
					}
					t()
				case t, ok := <-p.tasks:
					if !ok {
						p.drainPrio()
						return
					}
					t()
				}
			}
		}()
	}
	return p
}

// drainBulk runs the remaining bulk tasks after close (futures may still
// be forced; a claimed-then-dropped task would strand its forcer only if
// the forcer could not steal it, so draining is belt and braces).
func (p *Pool) drainBulk() {
	for t := range p.tasks {
		t()
	}
}

// drainPrio runs the remaining priority tasks after close.
func (p *Pool) drainPrio() {
	for t := range p.prio {
		t()
	}
}

// Workers returns the worker count (0 for the nil/inline pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Active reports whether offloads actually run on workers.
func (p *Pool) Active() bool { return p != nil && !p.closed.Load() }

// Stats returns how many tasks ran on workers and how many offload
// attempts degraded to inline execution (queue full or closed pool).
func (p *Pool) Stats() (offloaded, inlined uint64) {
	if p == nil {
		return 0, 0
	}
	return p.offloaded.Load(), p.inlined.Load()
}

// Stolen returns how many offloaded futures were reclaimed inline by
// Force before a worker started them (speculation that didn't pay).
func (p *Pool) Stolen() uint64 {
	if p == nil {
		return 0
	}
	return p.stolen.Load()
}

// Close drains the pool and stops its workers. It must not race with
// submissions: call it only after every experiment point using the pool
// has finished. Close is idempotent; a closed pool behaves like nil.
func (p *Pool) Close() {
	if p == nil || p.closed.Swap(true) {
		return
	}
	close(p.prio)
	close(p.tasks)
	p.wg.Wait()
}

// submit enqueues a task on the bulk lane without ever blocking. It
// reports false when the pool is inactive or the queue is full, in which
// case the caller must arrange inline execution.
func (p *Pool) submit(t func()) bool {
	if !p.Active() {
		return false
	}
	select {
	case p.tasks <- t:
		p.offloaded.Add(1)
		return true
	default:
		p.inlined.Add(1)
		return false
	}
}

// submitPrio enqueues a task on the priority lane (fork-join helpers).
func (p *Pool) submitPrio(t func()) bool {
	if !p.Active() {
		return false
	}
	select {
	case p.prio <- t:
		p.offloaded.Add(1)
		return true
	default:
		p.inlined.Add(1)
		return false
	}
}

// Future is the result of an offloaded pure computation. Exactly one of
// two shapes exists: an offloaded future (done channel; whoever wins the
// claim stores val then closes done) or a lazy inline future (fn
// evaluated at the first Force on the forcing goroutine).
//
// Offloaded futures are claim-based: the worker and the forcer race a
// CAS for the right to run fn. If Force wins — the worker had not
// started when the join point arrived — the forcer runs fn inline
// ("steals" it) instead of blocking behind everything else in the queue.
// This bounds a join's wait at one in-flight task rather than the queue
// depth, which matters because speculative offloads arrive in bursts.
//
// Offloaded futures may be forced from any number of goroutines; lazy
// inline futures must only be forced from one goroutine (the event
// loop), which is where all join points live.
type Future[T any] struct {
	state atomic.Int32 // 0 = unclaimed, 1 = claimed (worker or thief)
	done  chan struct{}
	p     *Pool
	val   T
	fn    func() T
}

// Go launches fn on the pool and returns its future. fn must be pure:
// it may read only immutable values captured at call time and must not
// call lazily-memoizing accessors. When the pool is nil, closed, or
// backlogged, the returned future evaluates fn lazily at Force — same
// value, same observable behavior, zero goroutines.
func Go[T any](p *Pool, fn func() T) *Future[T] {
	if !p.Active() {
		return &Future[T]{fn: fn}
	}
	f := &Future[T]{done: make(chan struct{}), p: p, fn: fn}
	if !p.submit(f.run) {
		return &Future[T]{fn: fn}
	}
	return f
}

// run is the worker-side half of the claim race.
func (f *Future[T]) run() {
	if f.state.CompareAndSwap(0, 1) {
		f.val = f.fn()
		close(f.done)
	}
	// Lost the claim: a forcer stole the task and runs (or ran) it.
}

// Resolved returns a future already holding v (used to pre-install
// known results so join points stay uniform).
func Resolved[T any](v T) *Future[T] {
	f := &Future[T]{val: v}
	return f
}

// Force returns the computed value. Force is the deterministic join
// point: it never advances virtual time and never reorders events, it
// only converts wall-clock wait into the value the inline code would
// have computed at this exact program point. If the offloaded task has
// not started yet, Force reclaims it and runs it inline — so a join
// never waits behind unrelated queued tasks.
func (f *Future[T]) Force() T {
	if f.done == nil {
		if f.fn != nil {
			f.val = f.fn()
			f.fn = nil
		}
		return f.val
	}
	if f.state.CompareAndSwap(0, 1) {
		// Steal: the worker had not started this task. Run it here.
		if f.p != nil {
			f.p.stolen.Add(1)
		}
		f.val = f.fn()
		close(f.done)
		return f.val
	}
	<-f.done
	return f.val
}

// Map runs fn(0), …, fn(n-1) as a fork-join: the calling goroutine
// participates, up to Workers() pool workers help via the priority lane,
// and Map returns only when every index completed. fn must be pure apart
// from writes keyed by its own index (e.g. out[i] = …), which makes the
// result independent of scheduling.
//
// The join waits on a completed-index count, not on helper scheduling:
// helpers that start after the caller exhausted the index space claim
// nothing and exit, so a backlogged pool costs Map nothing beyond serial
// execution by the caller.
//
// Map must be called from the event loop (or another non-worker
// goroutine), never from inside an offloaded closure: a worker blocking
// in Map's join while the in-flight index sits behind other blocked
// workers would deadlock the pool.
func (p *Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || !p.Active() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next, completed atomic.Int64
	done := make(chan struct{})
	work := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
			if completed.Add(1) == int64(n) {
				close(done)
			}
		}
	}
	helpers := p.workers
	if helpers > n-1 {
		helpers = n - 1
	}
	for w := 0; w < helpers; w++ {
		if !p.submitPrio(work) {
			break // lane full: the caller still completes everything
		}
	}
	work()
	<-done
}
