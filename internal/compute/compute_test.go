package compute

import (
	"sync"
	"testing"
)

func TestNilPoolIsInline(t *testing.T) {
	var p *Pool
	if p.Active() {
		t.Fatal("nil pool must be inactive")
	}
	if p.Workers() != 0 {
		t.Fatalf("nil pool workers = %d, want 0", p.Workers())
	}
	calls := 0
	f := Go(p, func() int { calls++; return 41 + 1 })
	if calls != 0 {
		t.Fatal("inline future must be lazy: fn ran before Force")
	}
	if got := f.Force(); got != 42 {
		t.Fatalf("Force = %d, want 42", got)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	// Repeated Force memoizes.
	if got := f.Force(); got != 42 || calls != 1 {
		t.Fatalf("second Force = %d (calls=%d), want 42 (1)", got, calls)
	}
	p.Close() // nil-safe
	off, inl := p.Stats()
	if off != 0 || inl != 0 {
		t.Fatalf("nil pool stats = %d/%d, want 0/0", off, inl)
	}
}

func TestNewPoolZeroWorkersIsNil(t *testing.T) {
	if p := NewPool(0); p != nil {
		t.Fatal("NewPool(0) must return the nil inline pool")
	}
	if p := NewPool(-3); p != nil {
		t.Fatal("NewPool(-3) must return the nil inline pool")
	}
}

func TestOffloadedFutureValue(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	futs := make([]*Future[int], 100)
	for i := range futs {
		i := i
		futs[i] = Go(p, func() int { return i * i })
	}
	for i, f := range futs {
		if got := f.Force(); got != i*i {
			t.Fatalf("fut[%d] = %d, want %d", i, got, i*i)
		}
	}
	off, inl := p.Stats()
	if off+inl != 100 {
		t.Fatalf("stats offloaded+inlined = %d, want 100", off+inl)
	}
}

func TestForceFromManyGoroutines(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f := Go(p, func() int { return 7 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := f.Force(); got != 7 {
				t.Errorf("Force = %d, want 7", got)
			}
		}()
	}
	wg.Wait()
}

func TestQueueFullDegradesInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	// Stall the single worker so the queue fills.
	release := make(chan struct{})
	blocker := Go(p, func() int { <-release; return 0 })
	// Overfill the queue; excess futures must degrade to inline lazily.
	n := 1*queueFactor + 16
	futs := make([]*Future[int], n)
	for i := range futs {
		i := i
		futs[i] = Go(p, func() int { return i })
	}
	close(release)
	blocker.Force()
	for i, f := range futs {
		if got := f.Force(); got != i {
			t.Fatalf("fut[%d] = %d, want %d", i, got, i)
		}
	}
	_, inl := p.Stats()
	if inl == 0 {
		t.Fatal("expected at least one inline degradation with a full queue")
	}
}

func TestClosedPoolDegradesInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	if p.Active() {
		t.Fatal("closed pool must be inactive")
	}
	f := Go(p, func() int { return 5 })
	if got := f.Force(); got != 5 {
		t.Fatalf("Force after Close = %d, want 5", got)
	}
}

func TestResolved(t *testing.T) {
	f := Resolved("done")
	if got := f.Force(); got != "done" {
		t.Fatalf("Resolved.Force = %q", got)
	}
}

func TestMapCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 17, 256} {
			out := make([]int, n)
			p.Map(n, func(i int) { out[i] = i + 1 })
			for i, v := range out {
				if v != i+1 {
					t.Fatalf("workers=%d n=%d: out[%d] = %d", workers, n, i, v)
				}
			}
		}
		p.Close()
	}
}

func TestMapDeterministicResult(t *testing.T) {
	// The same Map computation over an active pool must produce values
	// identical to the serial loop, regardless of scheduling.
	p := NewPool(4)
	defer p.Close()
	n := 1000
	serial := make([]uint64, n)
	for i := 0; i < n; i++ {
		serial[i] = uint64(i) * 2654435761
	}
	for trial := 0; trial < 10; trial++ {
		par := make([]uint64, n)
		p.Map(n, func(i int) { par[i] = uint64(i) * 2654435761 })
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("trial %d: par[%d] = %d, want %d", trial, i, par[i], serial[i])
			}
		}
	}
}

func TestPoolOf(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if got := PoolOf(struct{}{}); got != nil {
		t.Fatal("PoolOf of a non-provider must be nil")
	}
	if got := PoolOf(provider{p}); got != p {
		t.Fatal("PoolOf must return the provider's pool")
	}
}

type provider struct{ p *Pool }

func (pr provider) ComputePool() *Pool { return pr.p }

func BenchmarkGoForceInline(b *testing.B) {
	var p *Pool
	for i := 0; i < b.N; i++ {
		Go(p, func() int { return i }).Force()
	}
}

func BenchmarkGoForceOffloaded(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		Go(p, func() int { return i }).Force()
	}
}
