package microblock

import (
	"testing"
	"time"

	"predis/internal/crypto"
	"predis/internal/types"
	"predis/internal/wire"
)

func TestSchemeString(t *testing.T) {
	if SchemeNarwhal.String() != "Narwhal" || SchemeStratus.String() != "Stratus" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(0).String() == "" {
		t.Fatal("unknown scheme must print")
	}
}

func TestNewValidation(t *testing.T) {
	s := crypto.NewSimSigner(0, 1)
	if _, err := New(Options{Scheme: 0, NC: 4, Signer: s, MBSize: 50}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := New(Options{Scheme: SchemeNarwhal, NC: 0, Signer: s, MBSize: 50}); err == nil {
		t.Fatal("NC=0 accepted")
	}
	if _, err := New(Options{Scheme: SchemeNarwhal, NC: 4, MBSize: 50}); err == nil {
		t.Fatal("nil signer accepted")
	}
	a, err := New(Options{Scheme: SchemeStratus, NC: 4, F: 1, Signer: s, MBSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.opts.MaxIDs != DefaultMaxIDs {
		t.Fatalf("MaxIDs default = %d", a.opts.MaxIDs)
	}
}

func TestThresholds(t *testing.T) {
	s := crypto.NewSimSigner(0, 1)
	n, _ := New(Options{Scheme: SchemeNarwhal, NC: 4, F: 1, Signer: s, MBSize: 50})
	if n.threshold() != 3 {
		t.Fatalf("Narwhal threshold = %d, want n_c−f = 3", n.threshold())
	}
	st, _ := New(Options{Scheme: SchemeStratus, NC: 4, F: 1, Signer: s, MBSize: 50})
	if st.threshold() != 2 {
		t.Fatalf("Stratus threshold = %d, want f+1 = 2", st.threshold())
	}
}

func TestCertVerify(t *testing.T) {
	suite := crypto.NewSimSuite(4, 3)
	digest := crypto.HashBytes([]byte("mb"))
	ad := ackDigest(digest)
	cert := &Cert{Digest: digest}
	for i := 0; i < 3; i++ {
		cert.Signers = append(cert.Signers, wire.NodeID(i))
		cert.Sigs = append(cert.Sigs, suite.Signer(i).Sign(ad))
	}
	if !cert.Verify(suite.Signer(3), 4, 3) {
		t.Fatal("valid cert rejected")
	}
	if cert.Verify(suite.Signer(3), 4, 4) {
		t.Fatal("under-quorum cert accepted")
	}
	dup := &Cert{Digest: digest,
		Signers: []wire.NodeID{0, 0, 1},
		Sigs:    [][]byte{cert.Sigs[0], cert.Sigs[0], cert.Sigs[1]}}
	if dup.Verify(suite.Signer(3), 4, 3) {
		t.Fatal("duplicate-signer cert accepted")
	}
	bad := &Cert{Digest: digest,
		Signers: append([]wire.NodeID(nil), cert.Signers...),
		Sigs:    [][]byte{cert.Sigs[0], cert.Sigs[1], append([]byte(nil), cert.Sigs[2]...)}}
	bad.Sigs[2][1] ^= 1
	if bad.Verify(suite.Signer(3), 4, 3) {
		t.Fatal("corrupt cert accepted")
	}
}

func mkTxs(n int, base uint64) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = types.NewTransaction(9, base+uint64(i), 512, time.Duration(i))
	}
	return out
}

func TestMessageCodecs(t *testing.T) {
	RegisterMessages()
	suite := crypto.NewSimSuite(4, 3)
	mb := &Microblock{Producer: 1, Seq: 7, Txs: mkTxs(3, 0)}
	digest := mb.Digest()
	mb.Sig = suite.Signer(1).Sign(digest)
	cert := &Cert{Digest: digest}
	for i := 0; i < 3; i++ {
		cert.Signers = append(cert.Signers, wire.NodeID(i))
		cert.Sigs = append(cert.Sigs, suite.Signer(i).Sign(ackDigest(digest)))
	}
	mb2 := &Microblock{Producer: 1, Seq: 8, PrevCert: cert, Txs: mkTxs(2, 10)}
	mb2.Sig = suite.Signer(1).Sign(mb2.Digest())

	for _, m := range []wire.Message{
		mb, mb2,
		&Ack{Digest: digest, Replica: 2, Sig: make([]byte, 64)},
		&CertMsg{Cert: cert},
		&IDList{Height: 3, IDs: []crypto.Hash{digest, mb2.Digest()}},
		&MBRequest{IDs: []crypto.Hash{digest}},
		&MBResponse{Microblocks: []*Microblock{mb, mb2}},
	} {
		got, err := wire.Roundtrip(m)
		if err != nil {
			t.Fatalf("%s roundtrip: %v", wire.TypeName(m.Type()), err)
		}
		if len(wire.Marshal(m)) != m.WireSize() {
			t.Fatalf("%s WireSize mismatch: %d vs %d",
				wire.TypeName(m.Type()), m.WireSize(), len(wire.Marshal(m)))
		}
		_ = got
	}

	// Digest stability across roundtrip, and PrevCert preserved.
	got, _ := wire.Roundtrip(mb2)
	g := got.(*Microblock)
	if g.Digest() != mb2.Digest() {
		t.Fatal("microblock digest changed across roundtrip")
	}
	if g.PrevCert == nil || !g.PrevCert.Verify(suite.Signer(0), 4, 3) {
		t.Fatal("piggybacked cert broken after roundtrip")
	}
}

func TestDigestExcludesCertAndSig(t *testing.T) {
	mb := &Microblock{Producer: 1, Seq: 7, Txs: mkTxs(3, 0)}
	d := mb.Digest()
	mb.Sig = []byte("whatever")
	mb.PrevCert = &Cert{Digest: crypto.HashBytes([]byte("x"))}
	if mb.Digest() != d {
		t.Fatal("digest must not cover PrevCert or Sig")
	}
}

func TestIDListDigestOrderSensitive(t *testing.T) {
	a, b := crypto.HashBytes([]byte("a")), crypto.HashBytes([]byte("b"))
	l1 := &IDList{Height: 1, IDs: []crypto.Hash{a, b}}
	l2 := &IDList{Height: 1, IDs: []crypto.Hash{b, a}}
	if l1.Digest() == l2.Digest() {
		t.Fatal("id order must affect the digest")
	}
}

// TestProposalSizeGrowsLinearly reproduces the §V-A contrast: an id-list
// proposal at the 1000-id default is tens of kilobytes, while a Predis
// block is constant-size.
func TestProposalSizeGrowsLinearly(t *testing.T) {
	ids := make([]crypto.Hash, DefaultMaxIDs)
	for i := range ids {
		ids[i] = crypto.HashBytes([]byte{byte(i), byte(i >> 8)})
	}
	l := &IDList{Height: 1, IDs: ids}
	if l.WireSize() < 30_000 {
		t.Fatalf("1000-id proposal is %d bytes; paper reports ~30 KB", l.WireSize())
	}
	half := &IDList{Height: 1, IDs: ids[:500]}
	if l.WireSize()-half.WireSize() != 500*32 {
		t.Fatal("proposal size must grow linearly in ids")
	}
}
