// Package microblock implements the two shared-mempool baselines the paper
// compares against in Fig. 5:
//
//   - Narwhal-style reliable broadcast (RBC): a producer may only emit its
//     next microblock after collecting n_c−f acknowledgement signatures
//     (a certificate) for the current one, piggybacking the certificate on
//     the next microblock. Production is therefore chained and paced by a
//     round trip, which is where Narwhal's extra latency comes from.
//
//   - Stratus-style provably available broadcast (PAB): a producer
//     collects only f+1 acks (enough to guarantee one honest holder) and
//     does not chain production.
//
// In both schemes the consensus leader proposes a list of certified
// microblock identifiers (default cap 1000, the systems' default), so
// proposal size grows linearly with the transaction volume — the contrast
// to Predis's constant-size blocks.
package microblock

import (
	"sync"

	"predis/internal/compute"
	"predis/internal/crypto"
	"predis/internal/types"
	"predis/internal/wire"
)

// Message type tags (shared by both schemes).
const (
	TypeMicroblock = wire.TypeRangeNarwhal + 1
	TypeAck        = wire.TypeRangeNarwhal + 2
	TypeCertMsg    = wire.TypeRangeNarwhal + 3
	TypeIDList     = wire.TypeRangeNarwhal + 4
	TypeMBRequest  = wire.TypeRangeNarwhal + 5
	TypeMBResponse = wire.TypeRangeNarwhal + 6
)

// ackDigest is what replicas sign to acknowledge a microblock.
func ackDigest(mb crypto.Hash) crypto.Hash {
	return crypto.HashConcat([]byte("mb-ack"), mb[:])
}

// Cert is a quorum of acknowledgement signatures over a microblock digest.
type Cert struct {
	Digest  crypto.Hash
	Signers []wire.NodeID
	Sigs    [][]byte
}

// EncodedSize returns the certificate's wire size.
func (c *Cert) EncodedSize() int {
	n := 32 + 4
	for _, s := range c.Sigs {
		n += 4 + wire.SizeVarBytes(s)
	}
	return n
}

// EncodeTo appends the certificate.
func (c *Cert) EncodeTo(e *wire.Encoder) {
	e.Bytes32(c.Digest)
	e.U32(uint32(len(c.Signers)))
	for i, id := range c.Signers {
		e.Node(id)
		e.VarBytes(c.Sigs[i])
	}
}

// DecodeCert reads a certificate.
func DecodeCert(d *wire.Decoder) (*Cert, error) {
	c := &Cert{Digest: d.Bytes32()}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/8 {
		return nil, wire.ErrTruncated
	}
	c.Signers = make([]wire.NodeID, n)
	c.Sigs = make([][]byte, n)
	for i := 0; i < n; i++ {
		c.Signers[i] = d.Node()
		c.Sigs[i] = d.VarBytes()
	}
	return c, d.Err()
}

// Verify checks the certificate holds at least `threshold` distinct valid
// signatures.
func (c *Cert) Verify(signer crypto.Signer, n, threshold int) bool {
	if len(c.Signers) < threshold || len(c.Signers) != len(c.Sigs) {
		return false
	}
	digest := ackDigest(c.Digest)
	seen := make(map[wire.NodeID]struct{}, len(c.Signers))
	for i, id := range c.Signers {
		if int(id) >= n {
			return false
		}
		if _, dup := seen[id]; dup {
			return false
		}
		seen[id] = struct{}{}
		if !signer.Verify(int(id), digest, c.Sigs[i]) {
			return false
		}
	}
	return true
}

// Microblock is a producer's batch of transactions. PrevCert certifies the
// producer's previous microblock (nil for the first, or always nil under
// PAB).
type Microblock struct {
	Producer wire.NodeID
	Seq      uint64
	PrevCert *Cert
	Txs      []*types.Transaction
	Sig      []byte

	digest    crypto.Hash
	digestSet bool
	spec      *compute.Future[mbSpec]
}

// mbSpec is the speculative digest result: the microblock identity plus
// the per-transaction hashes it was derived from (so the join point can
// install the transaction memos too).
type mbSpec struct {
	digest   crypto.Hash
	txHashes []crypto.Hash
}

// computeMBSpec derives the digest from immutable identity fields only
// (stateless transaction hashing) so it may run on a compute-pool worker.
func computeMBSpec(producer wire.NodeID, seq uint64, txs []*types.Transaction) mbSpec {
	s := mbSpec{txHashes: make([]crypto.Hash, len(txs))}
	e := wire.NewEncoder(12 + 32*len(txs))
	e.Node(producer)
	e.U64(seq)
	for i, t := range txs {
		h := t.HashStateless()
		s.txHashes[i] = h
		e.Bytes32(h)
	}
	s.digest = crypto.HashBytes(e.Bytes())
	return s
}

// Precompute implements compute.Speculative: the digest starts on the
// compute pool when the microblock is scheduled on the network, and
// Digest at delivery forces a (usually finished) future. Idempotent —
// the simulator fires it once per recipient on the shared pointer.
func (m *Microblock) Precompute(p *compute.Pool) {
	if m.digestSet || m.spec != nil {
		return
	}
	producer, seq, txs := m.Producer, m.Seq, m.Txs
	m.spec = compute.Go(p, func() mbSpec { return computeMBSpec(producer, seq, txs) })
}

var _ compute.Speculative = (*Microblock)(nil)

// Digest returns the microblock identity (excluding PrevCert and Sig, so
// acks do not depend on the piggybacked certificate). The digest is
// memoized: the simulator delivers the same pointer to every recipient,
// and all identity fields are immutable once the microblock is sent, so
// re-hashing per recipient (and per retry) would only rebuild the same
// value. A pending speculative future is joined here — the deterministic
// join point — and yields the identical value.
func (m *Microblock) Digest() crypto.Hash {
	if m.digestSet {
		return m.digest
	}
	if m.spec != nil {
		s := m.spec.Force()
		m.spec = nil
		for i, t := range m.Txs {
			if i < len(s.txHashes) {
				t.PrimeHash(s.txHashes[i])
			}
		}
		m.digest = s.digest
		m.digestSet = true
		return m.digest
	}
	e := wire.NewEncoder(12 + 32*len(m.Txs))
	e.Node(m.Producer)
	e.U64(m.Seq)
	for _, t := range m.Txs {
		h := t.Hash()
		e.Bytes32(h)
	}
	m.digest = crypto.HashBytes(e.Bytes())
	m.digestSet = true
	return m.digest
}

var _ wire.Message = (*Microblock)(nil)

// Type implements wire.Message.
func (m *Microblock) Type() wire.Type { return TypeMicroblock }

// WireSize implements wire.Message.
func (m *Microblock) WireSize() int {
	n := wire.FrameOverhead + 4 + 8 + 1 + types.SizeTxs(m.Txs) + wire.SizeVarBytes(m.Sig)
	if m.PrevCert != nil {
		n += m.PrevCert.EncodedSize()
	}
	return n
}

// EncodeBody implements wire.Message.
func (m *Microblock) EncodeBody(e *wire.Encoder) {
	e.Node(m.Producer)
	e.U64(m.Seq)
	e.Bool(m.PrevCert != nil)
	if m.PrevCert != nil {
		m.PrevCert.EncodeTo(e)
	}
	types.EncodeTxs(e, m.Txs)
	e.VarBytes(m.Sig)
}

func decodeMicroblock(d *wire.Decoder) (wire.Message, error) {
	m := &Microblock{Producer: d.Node(), Seq: d.U64()}
	if d.Bool() {
		cert, err := DecodeCert(d)
		if err != nil {
			return nil, err
		}
		m.PrevCert = cert
	}
	txs, err := types.DecodeTxs(d)
	if err != nil {
		return nil, err
	}
	m.Txs = txs
	m.Sig = d.VarBytes()
	return m, d.Err()
}

// Ack acknowledges receipt of a microblock.
type Ack struct {
	Digest  crypto.Hash
	Replica wire.NodeID
	Sig     []byte
}

var _ wire.Message = (*Ack)(nil)

// Type implements wire.Message.
func (m *Ack) Type() wire.Type { return TypeAck }

// WireSize implements wire.Message.
func (m *Ack) WireSize() int { return wire.FrameOverhead + 32 + 4 + wire.SizeVarBytes(m.Sig) }

// EncodeBody implements wire.Message.
func (m *Ack) EncodeBody(e *wire.Encoder) {
	e.Bytes32(m.Digest)
	e.Node(m.Replica)
	e.VarBytes(m.Sig)
}

func decodeAck(d *wire.Decoder) (wire.Message, error) {
	m := &Ack{Digest: d.Bytes32(), Replica: d.Node(), Sig: d.VarBytes()}
	return m, d.Err()
}

// CertMsg broadcasts a standalone certificate (used for the tail
// microblock that has no successor to piggyback on).
type CertMsg struct {
	Cert *Cert
}

var _ wire.Message = (*CertMsg)(nil)

// Type implements wire.Message.
func (m *CertMsg) Type() wire.Type { return TypeCertMsg }

// WireSize implements wire.Message.
func (m *CertMsg) WireSize() int { return wire.FrameOverhead + m.Cert.EncodedSize() }

// EncodeBody implements wire.Message.
func (m *CertMsg) EncodeBody(e *wire.Encoder) { m.Cert.EncodeTo(e) }

func decodeCertMsg(d *wire.Decoder) (wire.Message, error) {
	c, err := DecodeCert(d)
	if err != nil {
		return nil, err
	}
	return &CertMsg{Cert: c}, d.Err()
}

// IDList is the consensus payload: certified microblock identifiers. Its
// wire size grows with the number of identifiers — the paper measures
// ~30 KB at the 1000-id default (§V-A).
type IDList struct {
	Height uint64
	IDs    []crypto.Hash

	digest    crypto.Hash
	digestSet bool
	spec      *compute.Future[crypto.Hash]
}

var _ wire.Message = (*IDList)(nil)

// Type implements wire.Message.
func (m *IDList) Type() wire.Type { return TypeIDList }

// WireSize implements wire.Message.
func (m *IDList) WireSize() int { return wire.FrameOverhead + 8 + 4 + 32*len(m.IDs) }

// EncodeBody implements wire.Message.
func (m *IDList) EncodeBody(e *wire.Encoder) {
	e.U64(m.Height)
	e.U32(uint32(len(m.IDs)))
	for _, id := range m.IDs {
		e.Bytes32(id)
	}
}

func decodeIDList(d *wire.Decoder) (wire.Message, error) {
	m := &IDList{Height: d.U64()}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/32 {
		return nil, wire.ErrTruncated
	}
	m.IDs = make([]crypto.Hash, n)
	for i := range m.IDs {
		m.IDs[i] = d.Bytes32()
	}
	return m, d.Err()
}

// digestStateless computes the payload identity from the immutable
// Height/IDs fields without touching the memo (safe on a worker).
func idListDigest(height uint64, ids []crypto.Hash) crypto.Hash {
	e := wire.NewEncoder(8 + 32*len(ids))
	e.U64(height)
	for _, id := range ids {
		e.Bytes32(id)
	}
	return crypto.HashBytes(e.Bytes())
}

// Precompute implements compute.Speculative: the digest starts on the
// pool at message-schedule time and Digest joins it at delivery.
func (m *IDList) Precompute(p *compute.Pool) {
	if m.digestSet || m.spec != nil {
		return
	}
	height, ids := m.Height, m.IDs
	m.spec = compute.Go(p, func() crypto.Hash { return idListDigest(height, ids) })
}

var _ compute.Speculative = (*IDList)(nil)

// Digest returns the payload identity, memoized for the same reason as
// Microblock.Digest: the list is immutable once proposed and every
// replica (per consensus phase) would recompute the identical value. A
// pending speculative future is joined here and yields the identical
// value.
func (m *IDList) Digest() crypto.Hash {
	if m.digestSet {
		return m.digest
	}
	if m.spec != nil {
		m.digest = m.spec.Force()
		m.spec = nil
	} else {
		m.digest = idListDigest(m.Height, m.IDs)
	}
	m.digestSet = true
	return m.digest
}

// MBRequest asks a peer for microblocks by id.
type MBRequest struct {
	IDs []crypto.Hash
}

var _ wire.Message = (*MBRequest)(nil)

// Type implements wire.Message.
func (m *MBRequest) Type() wire.Type { return TypeMBRequest }

// WireSize implements wire.Message.
func (m *MBRequest) WireSize() int { return wire.FrameOverhead + 4 + 32*len(m.IDs) }

// EncodeBody implements wire.Message.
func (m *MBRequest) EncodeBody(e *wire.Encoder) {
	e.U32(uint32(len(m.IDs)))
	for _, id := range m.IDs {
		e.Bytes32(id)
	}
}

func decodeMBRequest(d *wire.Decoder) (wire.Message, error) {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/32 {
		return nil, wire.ErrTruncated
	}
	m := &MBRequest{IDs: make([]crypto.Hash, n)}
	for i := range m.IDs {
		m.IDs[i] = d.Bytes32()
	}
	return m, d.Err()
}

// MBResponse returns fetched microblocks.
type MBResponse struct {
	Microblocks []*Microblock
}

var _ wire.Message = (*MBResponse)(nil)

// Type implements wire.Message.
func (m *MBResponse) Type() wire.Type { return TypeMBResponse }

// WireSize implements wire.Message.
func (m *MBResponse) WireSize() int {
	n := wire.FrameOverhead + 4
	for _, mb := range m.Microblocks {
		n += mb.WireSize() - wire.FrameOverhead
	}
	return n
}

// EncodeBody implements wire.Message.
func (m *MBResponse) EncodeBody(e *wire.Encoder) {
	e.U32(uint32(len(m.Microblocks)))
	for _, mb := range m.Microblocks {
		mb.EncodeBody(e)
	}
}

func decodeMBResponse(d *wire.Decoder) (wire.Message, error) {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining() {
		return nil, wire.ErrTruncated
	}
	m := &MBResponse{}
	for i := 0; i < n; i++ {
		mb, err := decodeMicroblock(d)
		if err != nil {
			return nil, err
		}
		m.Microblocks = append(m.Microblocks, mb.(*Microblock))
	}
	return m, d.Err()
}

var registerOnce sync.Once

// RegisterMessages registers microblock message types; idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeMicroblock, "mb.microblock", decodeMicroblock)
		wire.Register(TypeAck, "mb.ack", decodeAck)
		wire.Register(TypeCertMsg, "mb.cert", decodeCertMsg)
		wire.Register(TypeIDList, "mb.idlist", decodeIDList)
		wire.Register(TypeMBRequest, "mb.request", decodeMBRequest)
		wire.Register(TypeMBResponse, "mb.response", decodeMBResponse)
	})
}
