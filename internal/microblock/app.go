package microblock

import (
	"errors"
	"fmt"
	"time"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/types"
	"predis/internal/wire"
)

// Scheme selects the availability primitive.
type Scheme int

// Schemes.
const (
	// SchemeNarwhal: reliable broadcast, n_c−f acks per microblock,
	// production chained on the previous certificate.
	SchemeNarwhal Scheme = iota + 1
	// SchemeStratus: provably available broadcast, f+1 acks, unchained
	// production.
	SchemeStratus
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeNarwhal:
		return "Narwhal"
	case SchemeStratus:
		return "Stratus"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// DefaultMaxIDs is the identifier cap per proposal; 1000 is the default of
// both open-source systems per §V-A.
const DefaultMaxIDs = 1000

// Options configures an App.
type Options struct {
	Scheme Scheme
	// NC and F describe the consensus group; IDs 0..NC-1.
	NC, F int
	// Self is this node's ID.
	Self wire.NodeID
	// Signer signs microblocks and acks.
	Signer crypto.Signer
	// MBSize is the transaction cap per microblock (paper: 50).
	MBSize int
	// MBInterval is the production tick.
	MBInterval time.Duration
	// MaxIDs caps identifiers per proposal.
	MaxIDs int
	// CertTimeout bounds how long a certificate waits for a piggyback
	// before being broadcast standalone.
	CertTimeout time.Duration
	// OnCommit receives committed transactions in order.
	OnCommit func(height uint64, txs []*types.Transaction)
}

// App is the shared-mempool application (Narwhal or Stratus flavour). It
// implements consensus.Application and env-style message handling, and
// must run on a node's serialized executor.
type App struct {
	opts  Options
	ctx   env.Context
	peers []wire.NodeID

	queue []*types.Transaction

	store     map[crypto.Hash]*Microblock
	certified map[crypto.Hash]*Cert
	certOrder []crypto.Hash
	committed map[crypto.Hash]struct{}
	inflight  map[crypto.Hash]uint64

	// producer state
	nextSeq     uint64
	outstanding crypto.Hash // digest awaiting certification (Narwhal)
	hasOutst    bool
	ackSets     map[crypto.Hash]*Cert // partial certs being collected
	lastCert    *Cert                 // to piggyback on the next microblock
	certCarried bool

	lastCommitted uint64
	engine        consensus.Engine

	// stats
	produced  uint64
	txsCommit uint64
}

var (
	_ consensus.Application  = (*App)(nil)
	_ consensus.WorkReporter = (*App)(nil)
)

// New builds the app.
func New(opts Options) (*App, error) {
	if opts.Scheme != SchemeNarwhal && opts.Scheme != SchemeStratus {
		return nil, fmt.Errorf("microblock: unknown scheme %d", opts.Scheme)
	}
	if opts.NC <= 0 || opts.F < 0 || opts.Signer == nil || opts.MBSize <= 0 {
		return nil, errors.New("microblock: NC, Signer, and MBSize are required")
	}
	if opts.MaxIDs <= 0 {
		opts.MaxIDs = DefaultMaxIDs
	}
	if opts.MBInterval <= 0 {
		opts.MBInterval = 20 * time.Millisecond
	}
	if opts.CertTimeout <= 0 {
		opts.CertTimeout = 100 * time.Millisecond
	}
	peers := make([]wire.NodeID, opts.NC)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	return &App{
		opts:      opts,
		peers:     peers,
		store:     make(map[crypto.Hash]*Microblock),
		certified: make(map[crypto.Hash]*Cert),
		committed: make(map[crypto.Hash]struct{}),
		inflight:  make(map[crypto.Hash]uint64),
		ackSets:   make(map[crypto.Hash]*Cert),
	}, nil
}

// threshold returns the ack quorum for the scheme.
func (a *App) threshold() int {
	if a.opts.Scheme == SchemeNarwhal {
		return a.opts.NC - a.opts.F
	}
	return a.opts.F + 1
}

// SetEngine wires the consensus engine for pokes.
func (a *App) SetEngine(e consensus.Engine) { a.engine = e }

// Stats returns (microblocks produced, transactions committed).
func (a *App) Stats() (produced, committed uint64) { return a.produced, a.txsCommit }

// Start arms the production timer.
func (a *App) Start(ctx env.Context) {
	a.ctx = ctx
	a.armTick()
}

func (a *App) armTick() {
	a.ctx.After(a.opts.MBInterval, func() {
		a.tryProduce()
		a.armTick()
	})
}

// SubmitTx enqueues a client transaction.
func (a *App) SubmitTx(tx *types.Transaction) {
	a.queue = append(a.queue, tx)
	if len(a.queue) >= a.opts.MBSize {
		a.tryProduce()
	}
}

// tryProduce emits the next microblock when allowed: Narwhal requires the
// previous one to be certified first; Stratus produces freely.
func (a *App) tryProduce() {
	for len(a.queue) > 0 {
		if a.opts.Scheme == SchemeNarwhal && a.hasOutst {
			return // RBC chaining: wait for the certificate
		}
		n := a.opts.MBSize
		if n > len(a.queue) {
			n = len(a.queue)
		}
		txs := a.queue[:n:n]
		a.queue = a.queue[n:]
		a.nextSeq++
		mb := &Microblock{Producer: a.opts.Self, Seq: a.nextSeq, Txs: txs}
		if a.lastCert != nil && !a.certCarried {
			mb.PrevCert = a.lastCert
			a.certCarried = true
		}
		digest := mb.Digest()
		mb.Sig = a.opts.Signer.Sign(digest)
		a.store[digest] = mb
		a.produced++
		// Seed the ack set with our own signature.
		cert := &Cert{Digest: digest}
		cert.Signers = append(cert.Signers, a.opts.Self)
		cert.Sigs = append(cert.Sigs, a.opts.Signer.Sign(ackDigest(digest)))
		a.ackSets[digest] = cert
		if a.opts.Scheme == SchemeNarwhal {
			a.outstanding = digest
			a.hasOutst = true
		}
		env.Multicast(a.ctx, a.peers, mb)
	}
}

// Receive handles data-plane messages (routed by the node layer).
func (a *App) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *Microblock:
		a.onMicroblock(from, msg)
	case *Ack:
		a.onAck(from, msg)
	case *CertMsg:
		a.learnCert(msg.Cert, true)
	case *MBRequest:
		a.onRequest(from, msg)
	case *MBResponse:
		for _, mb := range msg.Microblocks {
			a.onMicroblock(from, mb)
		}
	default:
		a.ctx.Logf("microblock: unexpected %s from %d", wire.TypeName(m.Type()), from)
	}
}

func (a *App) onMicroblock(from wire.NodeID, mb *Microblock) {
	if int(mb.Producer) >= a.opts.NC {
		return
	}
	digest := mb.Digest()
	if mb.PrevCert != nil {
		a.learnCert(mb.PrevCert, true)
	}
	if _, ok := a.store[digest]; ok {
		return
	}
	if !a.opts.Signer.Verify(int(mb.Producer), digest, mb.Sig) {
		return
	}
	a.store[digest] = mb
	// Acknowledge to the producer.
	if mb.Producer != a.opts.Self {
		ack := &Ack{Digest: digest, Replica: a.opts.Self}
		ack.Sig = a.opts.Signer.Sign(ackDigest(digest))
		a.ctx.Send(mb.Producer, ack)
	}
	a.poke() // a pending proposal may now validate
}

func (a *App) onAck(from wire.NodeID, m *Ack) {
	if m.Replica != from || int(m.Replica) >= a.opts.NC {
		return
	}
	cert, ok := a.ackSets[m.Digest]
	if !ok {
		return // not ours or already certified
	}
	if !a.opts.Signer.Verify(int(m.Replica), ackDigest(m.Digest), m.Sig) {
		return
	}
	for _, id := range cert.Signers {
		if id == m.Replica {
			return
		}
	}
	cert.Signers = append(cert.Signers, m.Replica)
	cert.Sigs = append(cert.Sigs, m.Sig)
	if len(cert.Signers) >= a.threshold() {
		delete(a.ackSets, m.Digest)
		a.onCertified(cert)
	}
}

// onCertified handles a freshly formed certificate for one of our own
// microblocks.
func (a *App) onCertified(cert *Cert) {
	a.learnCert(cert, false)
	if a.hasOutst && cert.Digest == a.outstanding {
		a.hasOutst = false
	}
	a.lastCert = cert
	a.certCarried = false
	switch a.opts.Scheme {
	case SchemeStratus:
		// PAB: ship the proof immediately so the leader can propose.
		env.Multicast(a.ctx, a.peers, &CertMsg{Cert: cert})
		a.certCarried = true
	case SchemeNarwhal:
		// RBC: the next microblock piggybacks it; a timer covers the tail.
		a.tryProduce()
		if !a.certCarried {
			d := cert.Digest
			a.ctx.After(a.opts.CertTimeout, func() {
				if a.lastCert != nil && a.lastCert.Digest == d && !a.certCarried {
					env.Multicast(a.ctx, a.peers, &CertMsg{Cert: cert})
					a.certCarried = true
				}
			})
		}
	}
}

// learnCert records a certificate. verify controls signature checking
// (skipped for certs we assembled ourselves).
func (a *App) learnCert(cert *Cert, verify bool) {
	if _, ok := a.certified[cert.Digest]; ok {
		return
	}
	if _, ok := a.committed[cert.Digest]; ok {
		return
	}
	if verify && !cert.Verify(a.opts.Signer, a.opts.NC, a.threshold()) {
		return
	}
	a.certified[cert.Digest] = cert
	a.certOrder = append(a.certOrder, cert.Digest)
	a.poke()
}

func (a *App) onRequest(from wire.NodeID, m *MBRequest) {
	resp := &MBResponse{}
	for _, id := range m.IDs {
		if mb, ok := a.store[id]; ok {
			resp.Microblocks = append(resp.Microblocks, mb)
		}
	}
	if len(resp.Microblocks) > 0 {
		a.ctx.Send(from, resp)
	}
}

func (a *App) poke() {
	if a.engine != nil {
		a.engine.Poke()
	}
}

// HasPendingWork implements consensus.WorkReporter.
func (a *App) HasPendingWork() bool {
	if len(a.queue) > 0 {
		return true
	}
	for _, id := range a.certOrder {
		if _, done := a.committed[id]; !done {
			if _, fly := a.inflight[id]; !fly {
				return true
			}
		}
	}
	return false
}

// --- consensus.Application ---

// BuildProposal implements consensus.Application: propose up to MaxIDs
// certified, uncommitted, not-in-flight identifiers.
func (a *App) BuildProposal(height uint64, parent wire.Message) (wire.Message, crypto.Hash, bool) {
	a.releaseInflight()
	ids := make([]crypto.Hash, 0, a.opts.MaxIDs)
	for _, id := range a.certOrder {
		if len(ids) >= a.opts.MaxIDs {
			break
		}
		if _, done := a.committed[id]; done {
			continue
		}
		if _, fly := a.inflight[id]; fly {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, crypto.ZeroHash, false
	}
	for _, id := range ids {
		a.inflight[id] = height
	}
	payload := &IDList{Height: height, IDs: ids}
	return payload, payload.Digest(), true
}

// releaseInflight frees identifiers stranded in abandoned proposals: any
// id proposed at a height that has since committed (without including it)
// is proposable again.
func (a *App) releaseInflight() {
	for id, h := range a.inflight {
		if h <= a.lastCommitted {
			delete(a.inflight, id)
		}
	}
}

// ValidateProposal implements consensus.Application.
func (a *App) ValidateProposal(height uint64, payload, parent wire.Message) (crypto.Hash, error) {
	list, ok := payload.(*IDList)
	if !ok {
		return crypto.ZeroHash, fmt.Errorf("microblock: payload is %T", payload)
	}
	if list.Height != height {
		return crypto.ZeroHash, fmt.Errorf("microblock: payload height %d at %d", list.Height, height)
	}
	if len(list.IDs) == 0 || len(list.IDs) > a.opts.MaxIDs {
		return crypto.ZeroHash, fmt.Errorf("microblock: %d ids out of bounds", len(list.IDs))
	}
	var missing []crypto.Hash
	seen := make(map[crypto.Hash]struct{}, len(list.IDs))
	for _, id := range list.IDs {
		if _, dup := seen[id]; dup {
			return crypto.ZeroHash, errors.New("microblock: duplicate id in proposal")
		}
		seen[id] = struct{}{}
		if _, done := a.committed[id]; done {
			return crypto.ZeroHash, errors.New("microblock: proposal re-includes committed id")
		}
		if _, have := a.store[id]; !have {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		// Certificates guarantee availability; fetch from any peer.
		env.Multicast(a.ctx, a.peers, &MBRequest{IDs: missing})
		return crypto.ZeroHash, consensus.ErrPending
	}
	return list.Digest(), nil
}

// OnCommit implements consensus.Application.
func (a *App) OnCommit(height uint64, payload wire.Message) {
	list, ok := payload.(*IDList)
	if !ok {
		return
	}
	var txs []*types.Transaction
	for _, id := range list.IDs {
		if _, done := a.committed[id]; done {
			continue
		}
		mb := a.store[id]
		if mb == nil {
			a.ctx.Logf("microblock: commit with unfetched id %s", id.Short())
			continue
		}
		a.committed[id] = struct{}{}
		delete(a.certified, id)
		delete(a.inflight, id)
		txs = append(txs, mb.Txs...)
	}
	a.lastCommitted = height
	a.txsCommit += uint64(len(txs))
	a.compactCertOrder()
	if a.opts.OnCommit != nil {
		a.opts.OnCommit(height, txs)
	}
	a.poke()
}

// compactCertOrder drops committed ids from the proposal queue when the
// dead prefix grows large.
func (a *App) compactCertOrder() {
	if len(a.certOrder) < 256 {
		return
	}
	kept := a.certOrder[:0]
	for _, id := range a.certOrder {
		if _, done := a.committed[id]; !done {
			kept = append(kept, id)
		}
	}
	a.certOrder = kept
}
