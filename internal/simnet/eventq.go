package simnet

import (
	"predis/internal/wire"
)

// eventKind selects the dispatch path for a scheduled event. Events used
// to carry a closure for everything; the hot paths (message delivery,
// timers) are now closure-free so that Send and schedule allocate
// nothing in steady state.
type eventKind uint8

const (
	// evGeneric runs fn unconditionally. Used by Network.At — scripted
	// fault-injection callbacks fire even if every node is crashed.
	evGeneric eventKind = iota
	// evTimer runs fn unless the owning node is crashed at fire time.
	// Used by simNode.After and by the OnRestart hook.
	evTimer
	// evDeliver is a message delivery: no closure, the message and
	// endpoints live in the event itself.
	evDeliver
)

// event is one scheduled callback. Events are recycled through the
// queue's free list; gen increments on every recycle so that stale
// env.Timer handles (see simTimer) can detect that their event has been
// reused and refuse to cancel it.
type event struct {
	at  int64  // virtual time, nanoseconds since Epoch
	seq uint64 // tie-break for determinism
	gen uint64 // incremented when the event is recycled
	// canceled supports Timer.Stop without heap surgery.
	canceled bool
	kind     eventKind
	// nodeIdx is the dense index of the owning node (crash suppression for
	// evTimer); noIndex for node-less evGeneric events.
	nodeIdx int32

	fn func() // evGeneric, evTimer

	// evDeliver payload: endpoints by node pointer, so dispatch touches no
	// map and no ID→node translation.
	msg wire.Message
	src *simNode
	dst *simNode
}

// eventLess is the (at, seq) strict total order shared by every queue
// operation. seq is unique per event, so pop order is fully determined
// regardless of heap shape — which is what keeps a 4-ary heap
// replay-identical to the binary container/heap it replaced.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is an index-free 4-ary min-heap over *event with a free
// list. 4-ary halves the tree depth versus binary, which matters because
// sift-down cache misses dominate pop cost; index-free (no per-element
// heap index bookkeeping) is possible because cancellation is lazy
// (canceled events stay in the heap until popped).
type eventQueue struct {
	heap []*event
	free []*event
}

func (q *eventQueue) len() int { return len(q.heap) }

// head returns the minimum event without removing it.
func (q *eventQueue) head() *event { return q.heap[0] }

// push inserts ev, sifting up with a hole instead of pairwise swaps.
func (q *eventQueue) push(ev *event) {
	q.heap = append(q.heap, ev)
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

// popHead removes and returns the minimum event.
func (q *eventQueue) popHead() *event {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	q.heap = h[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places ev starting from the root, moving the hole toward the
// leaves. The children of i are 4i+1 .. 4i+4.
func (q *eventQueue) siftDown(ev *event) {
	h := q.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}

// alloc returns a blank event, reusing the free list when possible. In
// steady state (free list warm) it allocates nothing.
func (q *eventQueue) alloc() *event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return ev
	}
	return &event{} //predis:allocok free-list miss; steady state reuses
}

// recycle returns a popped event to the free list. The generation bump
// invalidates any outstanding simTimer handle; payload pointers are
// cleared so recycled events do not pin messages or nodes.
func (q *eventQueue) recycle(ev *event) {
	ev.gen++
	ev.canceled = false
	ev.fn = nil
	ev.msg = nil
	ev.src = nil
	ev.dst = nil
	q.free = append(q.free, ev)
}

// simTimer is the env.Timer handle for one scheduled event. The handle
// snapshots the event's generation at creation: once the event fires (or
// is canceled) and is recycled, the generations diverge and Stop becomes
// a no-op returning false — a handle can never cancel a recycled event
// that now belongs to someone else. Handles are bump-allocated from the
// Network's timer slab so After amortizes to ~0 allocations.
type simTimer struct {
	ev  *event
	gen uint64
}

// Stop implements env.Timer. It reports whether it canceled the timer
// before it fired (false if the timer already fired, was already
// stopped, or its event has been recycled).
func (t *simTimer) Stop() bool {
	if t.ev.gen != t.gen || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	return true
}

// timerSlabSize is how many simTimer handles are bump-allocated at once.
const timerSlabSize = 256

// sortBy is the deterministic in-place comparator-driven sort shared by
// sortNodeIDs and LinkLoads: a plain insertion sort, so the result
// depends only on less (which must be a strict weak order; every caller
// sorts by a unique key) — never on stdlib sort internals — and sorting
// allocates nothing.
func sortBy[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
