package simnet

import (
	"math/rand"
	"testing"
	"time"

	"predis/internal/wire"
)

// TestSendScheduleZeroAlloc pins the fast-path acceptance criterion:
// once the free list, heap slice, and link-byte map are warm, a
// Send+drain cycle — which internally exercises schedule, the 4-ary
// heap, dispatch, and recycle — performs zero allocations.
func TestSendScheduleZeroAlloc(t *testing.T) {
	registerTestTypes()
	n := New(Config{
		Uplink:   Mbps100,
		Downlink: Mbps100,
		Latency:  UniformLatency(time.Millisecond),
	})
	a := &recorder{}
	b := &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	msg := &ping{Seq: 1, Size: 64}

	// Warm-up: populate the linkBytes key, grow the heap slice and the
	// free list, and let the recorder's got slice reach capacity.
	for i := 0; i < 64; i++ {
		a.ctx.Send(1, msg)
		n.RunUntilIdle(0)
	}
	b.got = b.got[:0]

	allocs := testing.AllocsPerRun(200, func() {
		a.ctx.Send(1, msg)
		n.RunUntilIdle(0)
		b.got = b.got[:0]
	})
	if allocs != 0 {
		t.Fatalf("steady-state Send+drain allocates %v allocs/op, want 0", allocs)
	}
}

// TestScheduleZeroAlloc drives Network.At (the bare schedule path) with
// a preallocated callback and asserts zero allocations in steady state.
func TestScheduleZeroAlloc(t *testing.T) {
	n := New(Config{})
	fired := 0
	fn := func() { fired++ }
	// Warm-up.
	for i := 0; i < 64; i++ {
		n.At(n.Elapsed()+time.Microsecond, fn)
		n.RunUntilIdle(0)
	}
	allocs := testing.AllocsPerRun(200, func() {
		n.At(n.Elapsed()+time.Microsecond, fn)
		n.RunUntilIdle(0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule allocates %v allocs/op, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("callback never fired")
	}
}

// TestTimerStopRecycledEvent pins the free-list safety property from the
// issue: a stopped-then-recycled event must never fire its old closure,
// and a retained handle must never cancel the event's next occupant.
func TestTimerStopRecycledEvent(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	a := &recorder{}
	n.AddNode(0, a)
	n.Start()

	oldFired := false
	tm := a.ctx.After(10*time.Millisecond, func() { oldFired = true })
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop on a canceled timer returned true")
	}

	// Drain: pops the canceled event and recycles it into the free list.
	n.Run(20 * time.Millisecond)
	if oldFired {
		t.Fatal("canceled timer fired")
	}

	// The recycled event is reused by the next After. The stale handle
	// must neither report success nor cancel the new timer.
	newFired := false
	tm2 := a.ctx.After(10*time.Millisecond, func() { newFired = true })
	if tm.Stop() {
		t.Fatal("stale handle canceled a recycled event")
	}
	n.Run(40 * time.Millisecond)
	if !newFired {
		t.Fatal("new timer did not fire (stale Stop leaked through)")
	}
	if oldFired {
		t.Fatal("recycled event fired its old closure")
	}
	// A handle whose timer already fired reports false and cannot
	// resurrect anything.
	if tm2.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

// TestTimerStopAfterFireIsInert covers the other half of the reuse
// contract: Stop on a fired-and-recycled timer must not cancel an
// unrelated delivery event that now occupies the recycled slot.
func TestTimerStopAfterFireIsInert(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	a := &recorder{}
	b := &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()

	tm := a.ctx.After(time.Millisecond, func() {})
	n.Run(5 * time.Millisecond) // fires and recycles the event

	// Reuse the slot with a message delivery, then try the stale Stop.
	a.ctx.Send(1, &ping{Seq: 7})
	if tm.Stop() {
		t.Fatal("stale handle claimed to cancel a recycled delivery event")
	}
	n.Run(10 * time.Millisecond)
	if len(b.got) != 1 {
		t.Fatalf("delivery suppressed by stale timer handle: got %d messages", len(b.got))
	}
}

// TestEventQueuePopOrder cross-checks the 4-ary heap against a sorted
// reference on a randomized workload with duplicate timestamps: pop
// order must be exactly (at, seq) — the property that makes the heap
// swap replay-invisible.
func TestEventQueuePopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	var q eventQueue
	const N = 2000
	type key struct {
		at  int64
		seq uint64
	}
	want := make([]key, 0, N)
	for seq := uint64(1); seq <= N; seq++ {
		at := int64(rng.Intn(50)) // heavy timestamp collisions
		ev := q.alloc()
		ev.at, ev.seq = at, seq
		q.push(ev)
		want = append(want, key{at, seq})
		// Interleave pops to exercise siftDown on partially drained heaps.
		if rng.Intn(4) == 0 && q.len() > 0 {
			got := q.popHead()
			min := 0
			for i := range want {
				if want[i].at < want[min].at ||
					(want[i].at == want[min].at && want[i].seq < want[min].seq) {
					min = i
				}
			}
			if got.at != want[min].at || got.seq != want[min].seq {
				t.Fatalf("pop (%d,%d), want (%d,%d)", got.at, got.seq, want[min].at, want[min].seq)
			}
			want = append(want[:min], want[min+1:]...)
			q.recycle(got)
		}
	}
	prev := key{-1, 0}
	for q.len() > 0 {
		got := q.popHead()
		k := key{got.at, got.seq}
		if k.at < prev.at || (k.at == prev.at && k.seq <= prev.seq) {
			t.Fatalf("pop order violated: (%d,%d) after (%d,%d)", k.at, k.seq, prev.at, prev.seq)
		}
		prev = k
		q.recycle(got)
	}
}

// TestSortByMatchesSortNodeIDs pins the shared comparator helper: the
// generic sortBy used by LinkLoads and sortNodeIDs sorts identically to
// a reference insertion order.
func TestSortByMatchesSortNodeIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := make([]wire.NodeID, 100)
	for i := range ids {
		ids[i] = wire.NodeID(rng.Intn(40))
	}
	sortNodeIDs(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("sortNodeIDs not sorted at %d: %v", i, ids)
		}
	}
}
