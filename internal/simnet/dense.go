package simnet

import "predis/internal/wire"

// bitset is a grow-only bitset over dense node indices; it backs the
// crashed set so the Send/dispatch hot paths test liveness with one
// shift-and-mask instead of a map lookup.
type bitset struct {
	words []uint64
}

// grow ensures the set can hold n bits.
func (b *bitset) grow(n int) {
	want := (n + 63) >> 6
	for len(b.words) < want {
		b.words = append(b.words, 0)
	}
}

// get reports bit i; negative i (the noIndex sentinel) is always false.
//
//predis:hotpath
func (b *bitset) get(i int32) bool {
	if i < 0 {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (b *bitset) set(i int32)   { b.words[i>>6] |= 1 << (uint(i) & 63) }
func (b *bitset) clear(i int32) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// DenseLinkNodeLimit is the node count up to which per-link byte
// accounting uses a flat n×n matrix (8 MB at the limit). Above it the
// table degrades to a sparse map keyed by index pair: an n² matrix at
// 5·10⁴ nodes would be 20 GB, and large-population experiments touch a
// vanishing fraction of the n² possible links anyway.
const DenseLinkNodeLimit = 1024

// denseLinkLimit is variable so the sparse-fallback crossover is testable
// without registering 10³ nodes.
var denseLinkLimit = DenseLinkNodeLimit

// linkTable accumulates per-directed-link wire bytes. Three regimes:
// dense flat matrix while the population is small, sparse index-pair map
// beyond denseLinkLimit nodes, and an ID-keyed overflow map for sends to
// destinations that were never registered (those have no dense index but
// are still charged — the sender serialized the frame).
type linkTable struct {
	// dense is a stride×stride matrix indexed [from*stride+to]; nil once
	// the table has migrated to sparse.
	dense  []uint64
	stride int
	sparse map[uint64]uint64 // key fromIdx<<32|toIdx
	// unknown charges sends to unregistered destinations, keyed by ID
	// pair since the destination has no index.
	unknown map[linkKey]uint64
}

// add charges size bytes to the fromIdx→toIdx link; nodeCount is the
// current population, which decides dense vs sparse layout.
//
//predis:hotpath
func (t *linkTable) add(fromIdx, toIdx int32, nodeCount int, size uint64) {
	if t.sparse == nil && nodeCount <= denseLinkLimit {
		if t.stride < nodeCount {
			t.regrow(nodeCount)
		}
		t.dense[int(fromIdx)*t.stride+int(toIdx)] += size
		return
	}
	if t.sparse == nil {
		t.migrate()
	}
	t.sparse[uint64(uint32(fromIdx))<<32|uint64(uint32(toIdx))] += size
}

// regrow widens the dense matrix to at least the current population,
// doubling the stride so growth amortizes. Cold: runs O(log n) times
// over a network's whole life.
//
//predis:coldpath
func (t *linkTable) regrow(nodeCount int) {
	stride := t.stride * 2
	if stride < 16 {
		stride = 16
	}
	for stride < nodeCount {
		stride *= 2
	}
	if stride > denseLinkLimit {
		stride = denseLinkLimit
	}
	fresh := make([]uint64, stride*stride)
	for f := 0; f < t.stride; f++ {
		copy(fresh[f*stride:f*stride+t.stride], t.dense[f*t.stride:(f+1)*t.stride])
	}
	t.dense = fresh
	t.stride = stride
}

// migrate moves dense cells into the sparse map once the population
// outgrows the dense regime; accumulated counts are preserved. Cold:
// runs at most once per network.
//
//predis:coldpath
func (t *linkTable) migrate() {
	t.sparse = make(map[uint64]uint64)
	for f := 0; f < t.stride; f++ {
		row := t.dense[f*t.stride : (f+1)*t.stride]
		for to, b := range row {
			if b != 0 {
				t.sparse[uint64(uint32(f))<<32|uint64(uint32(to))] = b
			}
		}
	}
	t.dense = nil
	t.stride = 0
}

// addUnknown charges a send whose destination was never registered.
// Cold: unknown destinations are a misconfiguration corner, not a
// steady-state path.
//
//predis:coldpath
func (t *linkTable) addUnknown(from, to wire.NodeID, size uint64) {
	if t.unknown == nil {
		t.unknown = make(map[linkKey]uint64)
	}
	t.unknown[linkKey{from, to}] += size
}

// loads flattens every nonzero link into LinkLoad records (unsorted;
// the caller sorts). nodes translates dense indices back to IDs.
func (t *linkTable) loads(nodes []*simNode) []LinkLoad {
	var out []LinkLoad
	if t.dense != nil {
		for f := 0; f < t.stride && f < len(nodes); f++ {
			row := t.dense[f*t.stride : (f+1)*t.stride]
			for to, b := range row {
				if b != 0 && to < len(nodes) {
					out = append(out, LinkLoad{From: nodes[f].id, To: nodes[to].id, Bytes: b})
				}
			}
		}
	}
	for k, b := range t.sparse {
		out = append(out, LinkLoad{From: nodes[k>>32].id, To: nodes[uint32(k)].id, Bytes: b})
	}
	for k, b := range t.unknown {
		out = append(out, LinkLoad{From: k.from, To: k.to, Bytes: b})
	}
	return out
}
