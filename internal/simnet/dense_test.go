package simnet

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"predis/internal/wire"
)

// TestDenseIndexStableUnderChurn pins the interning contract: a node's
// dense index is assigned once at registration and survives any amount
// of crash/restart churn — obs samplers and link accounting key on it
// across the whole run.
func TestDenseIndexStableUnderChurn(t *testing.T) {
	registerTestTypes()
	n := New(Config{
		Uplink: Mbps100, Downlink: Mbps100,
		Latency: UniformLatency(time.Millisecond),
	})
	const nodes = 50
	// Register out of ID order so index order ≠ ID order.
	for i := nodes - 1; i >= 0; i-- {
		n.AddNode(wire.NodeID(i), &recorder{})
	}
	n.Start()

	before := make(map[wire.NodeID]int32)
	for i := 0; i < nodes; i++ {
		idx, ok := n.Index(wire.NodeID(i))
		if !ok {
			t.Fatalf("node %d has no index", i)
		}
		before[wire.NodeID(i)] = idx
	}

	// Churn: crash and restart every other node, twice.
	for round := 0; round < 2; round++ {
		for i := 0; i < nodes; i += 2 {
			n.Crash(wire.NodeID(i))
		}
		n.RunUntilIdle(0)
		for i := 0; i < nodes; i += 2 {
			n.Restart(wire.NodeID(i))
		}
		n.RunUntilIdle(0)
	}

	for id, want := range before {
		got, ok := n.Index(id)
		if !ok || got != want {
			t.Fatalf("node %d index changed across churn: %d -> %d (ok=%v)", id, want, got, ok)
		}
		if back, _, _, _, _ := n.NodeStatsAt(got); back != id {
			t.Fatalf("NodeStatsAt(%d) resolves to node %d, want %d", got, back, id)
		}
		if n.Crashed(id) {
			t.Fatalf("node %d still marked crashed after restart", id)
		}
	}

	// SortedIndexes must walk ascending IDs even though registration was
	// descending — it is the replay-critical Start/sampler sweep order.
	idxs := n.SortedIndexes()
	if len(idxs) != nodes {
		t.Fatalf("SortedIndexes returned %d entries, want %d", len(idxs), nodes)
	}
	for i, idx := range idxs {
		if id, _, _, _, _ := n.NodeStatsAt(idx); id != wire.NodeID(i) {
			t.Fatalf("SortedIndexes[%d] resolves to node %d, want %d", i, id, i)
		}
	}
}

// TestLinkTableSparseFallback crosses the dense→sparse threshold mid-run
// (via the test-only denseLinkLimit override) and asserts the accumulated
// per-link byte counts survive the migration exactly.
func TestLinkTableSparseFallback(t *testing.T) {
	registerTestTypes()
	old := denseLinkLimit
	denseLinkLimit = 8
	defer func() { denseLinkLimit = old }()

	n := New(Config{
		Uplink: Mbps100, Downlink: Mbps100,
		Latency: UniformLatency(time.Millisecond),
	})
	recs := make([]*recorder, 0, 12)
	addNode := func(id wire.NodeID) *recorder {
		r := &recorder{}
		recs = append(recs, r)
		n.AddNode(id, r)
		return r
	}
	for i := 0; i < 8; i++ {
		addNode(wire.NodeID(i))
	}
	n.Start()

	want := make(map[string]uint64)
	send := func(from, to wire.NodeID, size int) {
		recs[from].ctx.Send(to, &ping{Seq: 1, Size: uint32(size)})
		n.RunUntilIdle(0)
		want[fmt.Sprintf("%d->%d", from, to)] += uint64(size)
	}
	// Populate the dense matrix.
	for f := 0; f < 8; f++ {
		send(wire.NodeID(f), wire.NodeID((f+1)%8), 100+f)
	}
	if n.links.dense == nil || n.links.sparse != nil {
		t.Fatal("link table should be dense at 8 nodes")
	}

	// Cross the threshold: nodes 8..11 push the population past the
	// limit, so the next charge migrates dense → sparse. Start() is
	// idempotent and wires up only the late additions.
	for i := 8; i < 12; i++ {
		addNode(wire.NodeID(i))
	}
	n.Start()
	send(0, 8, 500)
	if n.links.dense != nil || n.links.sparse == nil {
		t.Fatal("link table did not migrate to sparse past the threshold")
	}
	send(3, 4, 77) // previously-dense pair keeps accumulating in sparse
	send(9, 2, 333)
	got := make(map[string]uint64)
	for _, l := range n.LinkLoads() {
		got[fmt.Sprintf("%d->%d", l.From, l.To)] = l.Bytes
	}
	for k, w := range want {
		if got[k] < w {
			t.Fatalf("link %s lost bytes across migration: have %d, want at least %d", k, got[k], w)
		}
	}

	// LinkLoads stays sorted by (From, To) in both regimes.
	loads := n.LinkLoads()
	sorted := sort.SliceIsSorted(loads, func(i, j int) bool {
		if loads[i].From != loads[j].From {
			return loads[i].From < loads[j].From
		}
		return loads[i].To < loads[j].To
	})
	if !sorted {
		t.Fatalf("LinkLoads unsorted after sparse migration: %v", loads)
	}
}

// TestLinkTableUnknownDestination pins the overflow regime: sends to a
// never-registered destination are still charged (the sender serialized
// the frame) and appear in LinkLoads.
func TestLinkTableUnknownDestination(t *testing.T) {
	registerTestTypes()
	n := New(Config{
		Uplink: Mbps100, Downlink: Mbps100,
		Latency: UniformLatency(time.Millisecond),
	})
	a := &recorder{}
	n.AddNode(0, a)
	n.Start()
	a.ctx.Send(999, &ping{Seq: 1, Size: 64})
	n.RunUntilIdle(0)
	var found bool
	for _, l := range n.LinkLoads() {
		if l.From == 0 && l.To == 999 && l.Bytes > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("send to unregistered node not charged: %v", n.LinkLoads())
	}
	if n.Dropped().Unknown != 1 {
		t.Fatalf("unknown-destination drop not counted: %+v", n.Dropped())
	}
}

// TestSendZeroAllocSparseLinks extends the steady-state zero-alloc pin to
// the sparse link regime: past the dense threshold, Send+drain must still
// not allocate once the sparse map's buckets are warm.
func TestSendZeroAllocSparseLinks(t *testing.T) {
	registerTestTypes()
	old := denseLinkLimit
	denseLinkLimit = 4
	defer func() { denseLinkLimit = old }()

	n := New(Config{
		Uplink: Mbps100, Downlink: Mbps100,
		Latency: UniformLatency(time.Millisecond),
	})
	const nodes = 16 // past the (overridden) dense limit from the start
	recs := make([]*recorder, nodes)
	for i := range recs {
		recs[i] = &recorder{}
		n.AddNode(wire.NodeID(i), recs[i])
	}
	n.Start()
	msg := &ping{Seq: 1, Size: 64}

	// Warm-up: touch every link we will exercise so the sparse map and
	// receiver slices stop growing.
	for i := 0; i < 64; i++ {
		for f := 0; f < nodes; f++ {
			recs[f].ctx.Send(wire.NodeID((f+1)%nodes), msg)
		}
		n.RunUntilIdle(0)
		for _, r := range recs {
			r.got = r.got[:0]
		}
	}
	if n.links.sparse == nil {
		t.Fatal("link table should be sparse under the overridden limit")
	}

	allocs := testing.AllocsPerRun(100, func() {
		for f := 0; f < nodes; f++ {
			recs[f].ctx.Send(wire.NodeID((f+1)%nodes), msg)
		}
		n.RunUntilIdle(0)
		for _, r := range recs {
			r.got = r.got[:0]
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state sparse-regime Send+drain allocates %v allocs/op, want 0", allocs)
	}
}

// TestFanOutZeroAlloc pins the population fan-out path: one sender
// unicasting to many registered receivers (the tree-relay shape) stays
// allocation-free in steady state, independent of population size.
func TestFanOutZeroAlloc(t *testing.T) {
	registerTestTypes()
	n := New(Config{
		Uplink: Mbps100, Downlink: Mbps100,
		Latency: UniformLatency(time.Millisecond),
	})
	const fanout = 32
	src := &recorder{}
	n.AddNode(0, src)
	sinks := make([]*recorder, fanout)
	for i := range sinks {
		sinks[i] = &recorder{}
		n.AddNode(wire.NodeID(1+i), sinks[i])
	}
	n.Start()
	msg := &ping{Seq: 1, Size: 1024}

	for i := 0; i < 64; i++ {
		for k := 0; k < fanout; k++ {
			src.ctx.Send(wire.NodeID(1+k), msg)
		}
		n.RunUntilIdle(0)
		for _, s := range sinks {
			s.got = s.got[:0]
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		for k := 0; k < fanout; k++ {
			src.ctx.Send(wire.NodeID(1+k), msg)
		}
		n.RunUntilIdle(0)
		for _, s := range sinks {
			s.got = s.got[:0]
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state %d-way fan-out allocates %v allocs/op, want 0", fanout, allocs)
	}
}
