// Package simnet is a deterministic discrete-event network simulator.
//
// It substitutes for the paper's Alibaba ECS testbed (§V): every node has an
// uplink and a downlink with finite bandwidth, every pair of nodes has a
// propagation latency, and message transfer time is
//
//	queueing(uplink) + size/uplink  ∥  latency  ∥  queueing(downlink) + size/downlink
//
// with cut-through pipelining (bits arrive `latency` after they leave, and
// both NICs are occupied for their serialization time). Since every figure
// in the paper is a function of exactly bandwidth contention and propagation
// latency, this model preserves the shapes the evaluation reports while
// running in fast, fully deterministic virtual time.
//
// The simulator executes protocol handlers (env.Handler) inline on a single
// goroutine in timestamp order, so runs are reproducible bit-for-bit given
// the same seed.
//
// # Dense node indexing
//
// wire.NodeIDs are sparse (consensus nodes at 0.., full nodes at 100..,
// clients at 1000..), so the simulator interns every ID to a dense int32
// index at registration. All per-node hot-path state — the node table, the
// crashed set (a bitset), per-link byte counters — is indexed by that dense
// index, so a 10⁴–10⁵-node population costs flat arrays, not hash lookups,
// on every Send/dispatch. Per-link accounting is a flat [from*n+to] matrix
// up to DenseLinkNodeLimit nodes and degrades to a sparse index-pair map
// above it (n² cells at 5·10⁴ nodes would be 20 GB).
//
// # Send accounting
//
// Send applies one uniform charging policy: whenever a live (non-crashed)
// sender serializes a message, the sender's uplink busy time and the byte
// counters (global BytesSent, per-node, per-link) are charged — regardless
// of whether the message is later dropped, because a sender cannot know
// the packet will die. Crashed senders emit nothing and are charged
// nothing. Every charged message either reaches a handler (counted by
// Delivered) or increments exactly one cause in Dropped(): Unknown
// (unregistered destination), Crashed (receiver dead at send time, or
// either endpoint dead at delivery time), Partitioned, Filtered, or Lost
// (random loss). So after the network quiesces,
//
//	Sends() == Delivered() + Dropped().Total()
//
// holds as an invariant. Downlink busy time and per-node receive bytes are
// charged when the message is scheduled onto the receiver's NIC (i.e. only
// for messages that survive the send-time drop checks).
package simnet

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"predis/internal/compute"
	"predis/internal/env"
	"predis/internal/wire"
)

// Epoch is the virtual time at which every simulation starts.
var Epoch = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

// Bandwidth is a link rate in bytes per second.
type Bandwidth float64

// Common rates. The paper's testbed uses 100 Mbps instances.
const (
	Mbps100 Bandwidth = 100e6 / 8
	Mbps50  Bandwidth = 50e6 / 8
	Gbps1   Bandwidth = 1e9 / 8
)

// Config parameterizes a Network.
type Config struct {
	// Uplink and Downlink are the default per-node NIC rates in bytes/s.
	// Zero means unlimited (infinite bandwidth).
	Uplink, Downlink Bandwidth
	// Latency returns one-way propagation delay between two distinct
	// nodes. Nil means zero latency everywhere.
	Latency func(from, to wire.NodeID) time.Duration
	// Seed drives all per-node random sources.
	Seed int64
	// LossProbability drops each message independently with the given
	// probability (0 disables). It models the network-layer failure
	// probability of §IV-B; bandwidth is still charged for lost messages
	// (the sender cannot know).
	LossProbability float64
	// CopyOnDeliver marshals and unmarshals every message on delivery.
	// Slower, but catches codec bugs and accidental aliasing between
	// sender and receiver state; tests enable it.
	CopyOnDeliver bool
	// Compute, when non-nil, is the intra-point compute plane: messages
	// implementing compute.Speculative get Precompute called right after
	// Send schedules their delivery, so pure derivations (digests, proof
	// checks, body verification) overlap with simulated transfer time.
	// Results are forced only at the deterministic join points the
	// handlers already use, so delivery order, terminal output, and
	// replay hashes are byte-identical for any worker count (nil = all
	// inline, the default). Handlers reach the pool through
	// compute.PoolOf(ctx).
	Compute *compute.Pool
	// LogWriter receives Logf output when non-nil.
	LogWriter io.Writer
}

// UniformLatency returns a latency function with constant one-way delay.
func UniformLatency(d time.Duration) func(from, to wire.NodeID) time.Duration {
	return func(from, to wire.NodeID) time.Duration { return d }
}

// DropCounts tallies messages dropped by the network, split by cause.
// Exactly one cause is charged per dropped message.
type DropCounts struct {
	// Unknown counts sends to destinations that were never registered.
	Unknown uint64
	// Crashed counts messages whose receiver was crashed at send time, or
	// whose sender or receiver crashed while the message was in flight.
	Crashed uint64
	// Partitioned counts messages dropped by the partition filter.
	Partitioned uint64
	// Filtered counts messages dropped by the message-level drop filter.
	Filtered uint64
	// Lost counts messages dropped by the random loss model.
	Lost uint64
	// Undecodable counts messages whose wire frame failed to decode at the
	// receiver. A real runtime cannot hand a handler a frame it cannot
	// parse, so a garbage frame degrades to a counted drop, never a panic.
	Undecodable uint64
}

// Total returns the sum over all causes.
func (d DropCounts) Total() uint64 {
	return d.Unknown + d.Crashed + d.Partitioned + d.Filtered + d.Lost + d.Undecodable
}

// linkKey identifies a directed sender→receiver pair by node ID. It is
// only used for the rare unknown-destination overflow accounting; known
// links are charged on the dense-index linkTable.
type linkKey struct {
	from, to wire.NodeID
}

// LinkLoad is the cumulative traffic serialized onto one directed link.
type LinkLoad struct {
	From, To wire.NodeID
	Bytes    uint64
}

// noIndex is the dense-index sentinel for "no node" (Network.At events).
const noIndex int32 = -1

// Network is the simulator. It is not safe for concurrent use; drive it
// from one goroutine.
type Network struct {
	cfg Config
	// now mirrors nowNs (nanoseconds since Epoch); the int64 form is what
	// the event loop and NIC arithmetic use, the time.Time form is what
	// env.Context exposes. Both always describe the same instant.
	now   time.Time
	nowNs int64
	seq   uint64
	q     eventQueue

	// nodes is the dense node table (index = registration order); index
	// interns sparse wire.NodeIDs to dense indices; order memoizes the
	// ascending-ID permutation of indices (nil = stale, rebuilt lazily).
	nodes []*simNode
	index map[wire.NodeID]int32
	order []int32

	// timerSlab bump-allocates simTimer handles in blocks so After
	// amortizes to ~1/timerSlabSize allocations per call.
	timerSlab []simTimer

	// fault injection. crashed is a bitset over dense indices.
	crashed    bitset
	partition  func(from, to wire.NodeID) bool
	dropFilter func(from, to wire.NodeID, m wire.Message) bool
	mutator    func(from, to wire.NodeID, m wire.Message) wire.Message
	lossRng    *rand.Rand

	// sends counts Send calls by live senders; delivered counts messages
	// handed to handlers; drops splits the difference by cause; bytesSent
	// counts wire bytes charged to uplinks; links is the same total
	// split per directed sender→receiver pair (dense index matrix with a
	// sparse fallback at large n).
	sends     uint64
	delivered uint64
	drops     DropCounts
	bytesSent uint64
	links     linkTable

	// OnDeliver, when non-nil, observes every successful delivery just
	// before the handler runs. The harness uses it to measure propagation.
	OnDeliver func(from, to wire.NodeID, m wire.Message, at time.Time)
}

type simNode struct {
	id  wire.NodeID
	idx int32
	net *Network
	// rng is built lazily on first Rand(): its seed depends only on the
	// node ID, so laziness is replay-invisible, and handlers that never
	// draw randomness (the common case at 10⁴⁺-node scale) skip the
	// ~5 KB source allocation entirely.
	rng      *rand.Rand
	handler  env.Handler
	up, down Bandwidth
	// upFree/downFree are the times (ns since Epoch) at which each NIC
	// finishes its currently reserved serialization work.
	upFree   int64
	downFree int64
	started  bool

	// cumulative NIC accounting (survives Restart — these are lifetime
	// counters, unlike the upFree/downFree reservations which reset).
	upBusy, downBusy   time.Duration
	bytesUp, bytesDown uint64
}

var _ env.Context = (*simNode)(nil)

// New creates an empty network.
func New(cfg Config) *Network {
	return &Network{
		cfg:     cfg,
		now:     Epoch,
		index:   make(map[wire.NodeID]int32),
		lossRng: rand.New(rand.NewSource(cfg.Seed ^ 0x10551055)),
	}
}

// Lost returns how many messages the loss model dropped.
func (n *Network) Lost() uint64 { return n.drops.Lost }

// Sends returns how many Send calls live senders have made (each is either
// delivered or counted in exactly one Dropped cause).
func (n *Network) Sends() uint64 { return n.sends }

// Dropped returns the per-cause drop counts accumulated so far.
func (n *Network) Dropped() DropCounts { return n.drops }

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// Elapsed returns virtual time since the epoch.
func (n *Network) Elapsed() time.Duration { return n.now.Sub(Epoch) }

// Delivered returns the number of messages delivered to handlers so far.
func (n *Network) Delivered() uint64 { return n.delivered }

// BytesSent returns total wire bytes charged to uplinks so far.
func (n *Network) BytesSent() uint64 { return n.bytesSent }

// QueueLen returns the number of events currently pending in the event
// heap (including canceled timers that have not been popped yet).
func (n *Network) QueueLen() int { return n.q.len() }

// NodeCount returns the number of registered nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// Index interns a node ID to its dense index, reporting whether the ID is
// registered. Indices are stable for the lifetime of the network (crash,
// restart, and quarantine churn never move a node).
func (n *Network) Index(id wire.NodeID) (int32, bool) {
	idx, ok := n.index[id]
	return idx, ok
}

// SortedIndexes returns the dense indices of every registered node in
// ascending node-ID order. The slice is memoized and rebuilt only when a
// node is added; callers must not mutate it.
func (n *Network) SortedIndexes() []int32 {
	if n.order == nil {
		n.order = make([]int32, len(n.nodes))
		for i := range n.nodes {
			n.order[i] = int32(i)
		}
		sort.Slice(n.order, func(a, b int) bool {
			return n.nodes[n.order[a]].id < n.nodes[n.order[b]].id
		})
	}
	return n.order
}

// NodeIDs returns every registered node ID in ascending order.
func (n *Network) NodeIDs() []wire.NodeID {
	order := n.SortedIndexes()
	ids := make([]wire.NodeID, len(order))
	for i, idx := range order {
		ids[i] = n.nodes[idx].id
	}
	return ids
}

// NodeStatsAt returns the node ID and cumulative NIC counters of the node
// at dense index idx: uplink/downlink serialization busy time and bytes
// serialized out of / into the node. Index-addressed so samplers sweep
// large populations without a hash lookup per node.
func (n *Network) NodeStatsAt(idx int32) (id wire.NodeID, upBusy, downBusy time.Duration, bytesUp, bytesDown uint64) {
	sn := n.nodes[idx]
	return sn.id, sn.upBusy, sn.downBusy, sn.bytesUp, sn.bytesDown
}

// NICBusy returns the cumulative serialization busy time of a node's
// uplink and downlink NICs. Sampling the deltas between two calls yields
// link utilization over the interval (deltas can transiently exceed the
// interval length: busy time is reserved ahead when a burst queues).
func (n *Network) NICBusy(id wire.NodeID) (up, down time.Duration) {
	idx, ok := n.index[id]
	if !ok {
		return 0, 0
	}
	sn := n.nodes[idx]
	return sn.upBusy, sn.downBusy
}

// NodeBytes returns the cumulative wire bytes serialized out of (sent)
// and into (received) one node.
func (n *Network) NodeBytes(id wire.NodeID) (sent, received uint64) {
	idx, ok := n.index[id]
	if !ok {
		return 0, 0
	}
	sn := n.nodes[idx]
	return sn.bytesUp, sn.bytesDown
}

// LinkLoads returns cumulative per-link traffic sorted by (from, to) —
// a deterministic order independent of map iteration.
func (n *Network) LinkLoads() []LinkLoad {
	out := n.links.loads(n.nodes)
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out
}

// AddNode registers a handler under the given ID with the default NIC
// rates. It panics on duplicate IDs (a setup programming error).
func (n *Network) AddNode(id wire.NodeID, h env.Handler) {
	n.AddNodeRates(id, h, n.cfg.Uplink, n.cfg.Downlink)
}

// AddNodeRates registers a handler with explicit NIC rates (0 = unlimited).
func (n *Network) AddNodeRates(id wire.NodeID, h env.Handler, up, down Bandwidth) {
	if _, ok := n.index[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %d", id))
	}
	idx := int32(len(n.nodes))
	sn := &simNode{
		id:       id,
		idx:      idx,
		net:      n,
		handler:  h,
		up:       up,
		down:     down,
		upFree:   n.nowNs,
		downFree: n.nowNs,
	}
	n.nodes = append(n.nodes, sn)
	n.index[id] = idx
	n.crashed.grow(len(n.nodes))
	n.order = nil // sorted-ID memo is stale
}

// Start invokes Start on every handler that has not started yet, in ID
// order for determinism. Call it after adding nodes and before Run.
func (n *Network) Start() {
	for _, idx := range n.SortedIndexes() {
		sn := n.nodes[idx]
		if !sn.started {
			sn.started = true
			sn.handler.Start(sn)
		}
	}
}

func sortNodeIDs(ids []wire.NodeID) {
	sortBy(ids, func(a, b wire.NodeID) bool { return a < b })
}

// setNow advances virtual time to ns nanoseconds after the epoch,
// keeping the time.Time mirror in sync.
func (n *Network) setNow(ns int64) {
	n.nowNs = ns
	n.now = Epoch.Add(time.Duration(ns))
}

// dispatch runs one (non-canceled) event. The event is still owned by
// the caller, which recycles it after dispatch returns.
//
//predis:hotpath
func (n *Network) dispatch(ev *event) {
	switch ev.kind {
	case evDeliver:
		if n.crashed.get(ev.dst.idx) || n.crashed.get(ev.src.idx) {
			// Sender or receiver died while the message was in flight.
			n.drops.Crashed++
			return
		}
		msg := ev.msg
		if d, ok := msg.(wire.Defective); ok && d.Defective() {
			// Undecodable frame: a real runtime drops it at the codec, so
			// the zero-copy fast path must never hand it to a handler.
			n.drops.Undecodable++
			return
		}
		if n.cfg.CopyOnDeliver {
			cp, err := wire.Roundtrip(msg)
			if err != nil {
				// Same degradation as the real runtime: count the drop and
				// move on. Panicking here would let one garbage frame kill
				// the whole simulation.
				n.drops.Undecodable++
				return
			}
			msg = cp
		}
		n.delivered++
		if n.OnDeliver != nil {
			n.OnDeliver(ev.src.id, ev.dst.id, msg, n.now)
		}
		ev.dst.handler.Receive(ev.src.id, msg)
	case evTimer:
		if !n.crashed.get(ev.nodeIdx) {
			ev.fn()
		}
	default:
		ev.fn()
	}
}

// Run processes events until the virtual deadline (relative to the epoch)
// passes or the event queue drains. It returns the number of events run.
//
//predis:hotpath
func (n *Network) Run(until time.Duration) int {
	deadline := int64(until)
	count := 0
	for n.q.len() > 0 {
		ev := n.q.head()
		if ev.at > deadline {
			n.setNow(deadline)
			return count
		}
		n.q.popHead()
		if !ev.canceled {
			n.setNow(ev.at)
			n.dispatch(ev)
			count++
		}
		n.q.recycle(ev)
	}
	if n.nowNs < deadline {
		n.setNow(deadline)
	}
	return count
}

// RunUntilIdle processes every pending event regardless of time. It is
// useful for propagation-latency experiments that end when the network
// quiesces. maxEvents bounds runaway protocols; 0 means no bound.
//
//predis:hotpath
func (n *Network) RunUntilIdle(maxEvents int) int {
	count := 0
	for n.q.len() > 0 {
		ev := n.q.popHead()
		if !ev.canceled {
			n.setNow(ev.at)
			n.dispatch(ev)
			count++
		}
		n.q.recycle(ev)
		if maxEvents > 0 && count >= maxEvents {
			break
		}
	}
	return count
}

// schedule enqueues an event at ns nanoseconds after the epoch (clamped
// to now), taking a recycled event from the free list when one is
// available: in steady state scheduling allocates nothing. nodeIdx is the
// dense index of the owning node (noIndex for node-less events).
//
//predis:hotpath
func (n *Network) schedule(ns int64, nodeIdx int32, kind eventKind, fn func()) *event {
	if ns < n.nowNs {
		ns = n.nowNs
	}
	n.seq++
	ev := n.q.alloc()
	ev.at = ns
	ev.seq = n.seq
	ev.nodeIdx = nodeIdx
	ev.kind = kind
	ev.fn = fn
	n.q.push(ev)
	return ev
}

// Crash fail-stops a node: nothing is delivered to or from it anymore and
// its pending timers are suppressed. Crashing an unregistered node is a
// no-op.
func (n *Network) Crash(id wire.NodeID) {
	if idx, ok := n.index[id]; ok {
		n.crashed.set(idx)
	}
}

// Restart brings a crashed node back up. The crash flag is cleared, the
// node's NIC queues are reset (a rebooted machine does not inherit its
// pre-crash serialization backlog), and — if the handler implements
// env.Restartable — OnRestart is scheduled on the node's executor so the
// handler can re-arm timers and run its catch-up protocol. Handler state
// is otherwise untouched: this models a process restart that recovers its
// persistent state (ledger, keys) but has lost all in-flight timers and
// messages. Restarting a node that is not crashed is a no-op.
func (n *Network) Restart(id wire.NodeID) {
	idx, ok := n.index[id]
	if !ok || !n.crashed.get(idx) {
		return
	}
	n.crashed.clear(idx)
	sn := n.nodes[idx]
	sn.upFree = n.nowNs
	sn.downFree = n.nowNs
	if r, ok := sn.handler.(env.Restartable); ok {
		// evTimer dispatch already suppresses the callback if the node
		// re-crashed before the restart event ran.
		n.schedule(n.nowNs, idx, evTimer, r.OnRestart)
	}
}

// At schedules fn to run at virtual time d after the epoch (clamped to
// now if already past). It is the hook fault-injection scripts use to
// drive Crash/Restart/SetPartition/SetDropFilter at scripted times from
// within the event loop, keeping fault timing deterministic relative to
// protocol events. The callback runs on the simulator goroutine and is
// not tied to any node (it fires even if every node is crashed).
func (n *Network) At(d time.Duration, fn func()) {
	n.schedule(int64(d), noIndex, evGeneric, fn)
}

// Crashed reports whether a node is currently crashed.
func (n *Network) Crashed(id wire.NodeID) bool {
	idx, ok := n.index[id]
	return ok && n.crashed.get(idx)
}

// SetPartition installs a reachability filter; messages where fn returns
// true are dropped. Nil clears it.
func (n *Network) SetPartition(fn func(from, to wire.NodeID) bool) { n.partition = fn }

// SetDropFilter installs a message-level drop filter (for Byzantine
// omission experiments). Nil clears it.
func (n *Network) SetDropFilter(fn func(from, to wire.NodeID, m wire.Message) bool) {
	n.dropFilter = fn
}

// SetMutator installs a per-recipient message mutator (for Byzantine
// corruption experiments): it runs after the drop filters decide a message
// will be delivered and may substitute a different message for this
// recipient — returning nil or the original pointer leaves the message
// unchanged. Mutators must return a fresh copy rather than modify the
// original, because multicast hands the same pointer to every recipient.
// Nil clears it.
func (n *Network) SetMutator(fn func(from, to wire.NodeID, m wire.Message) wire.Message) {
	n.mutator = fn
}

// latency returns one-way delay from a to b.
func (n *Network) latency(from, to wire.NodeID) time.Duration {
	if n.cfg.Latency == nil || from == to {
		return 0
	}
	return n.cfg.Latency(from, to)
}

// --- env.Context implementation (per node) ---

// ID implements env.Context.
func (s *simNode) ID() wire.NodeID { return s.id }

// Now implements env.Context.
func (s *simNode) Now() time.Time { return s.net.now }

// Rand implements env.Context. The source is built on first use; its seed
// depends only on the node ID, so call-order laziness never changes a
// draw sequence.
func (s *simNode) Rand() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.net.cfg.Seed ^ (int64(s.id)+1)*0x5851f42d4c957f2d))
	}
	return s.rng
}

// ComputePool implements compute.PoolProvider: handlers use
// compute.PoolOf(ctx) to fork-join pure kernels (Merkle builds, stripe
// encode/decode) without the context interface growing a method.
func (s *simNode) ComputePool() *compute.Pool { return s.net.cfg.Compute }

// Logf implements env.Context.
func (s *simNode) Logf(format string, args ...any) {
	if w := s.net.cfg.LogWriter; w != nil {
		fmt.Fprintf(w, "%12s node=%d "+format+"\n",
			append([]any{s.net.Elapsed(), s.id}, args...)...)
	}
}

// Send implements env.Context. It charges the sender's uplink and the
// receiver's downlink for the message's WireSize and schedules delivery.
// The charging policy is uniform across every drop path — see "Send
// accounting" in the package comment.
//
//predis:hotpath
func (s *simNode) Send(to wire.NodeID, m wire.Message) {
	net := s.net
	if net.crashed.get(s.idx) {
		// A crashed sender emits nothing and is charged nothing.
		return
	}
	size := m.WireSize()
	net.sends++

	// Uplink serialization and byte counters, charged before any drop
	// decision: a live sender always puts the packet on the wire and
	// cannot know it will die downstream.
	net.bytesSent += uint64(size)
	s.bytesUp += uint64(size)
	sendStart := later(net.nowNs, s.upFree)
	sendEnd := sendStart + int64(txTime(size, s.up))
	s.upFree = sendEnd
	s.upBusy += time.Duration(sendEnd - sendStart)

	dstIdx, ok := net.index[to]
	if !ok {
		net.links.addUnknown(s.id, to, uint64(size))
		net.drops.Unknown++
		return
	}
	net.links.add(s.idx, dstIdx, len(net.nodes), uint64(size))
	if net.crashed.get(dstIdx) {
		net.drops.Crashed++
		return
	}
	if net.partition != nil && net.partition(s.id, to) {
		net.drops.Partitioned++
		return
	}
	if net.dropFilter != nil && net.dropFilter(s.id, to, m) {
		net.drops.Filtered++
		return
	}
	if net.cfg.LossProbability > 0 && net.lossRng.Float64() < net.cfg.LossProbability {
		net.drops.Lost++
		return
	}
	if net.mutator != nil {
		// Content substitution only: bandwidth was already charged for the
		// frame the sender serialized, and transfer time below keeps using
		// that size, so a mutator changes what arrives, never when.
		if mm := net.mutator(s.id, to, m); mm != nil {
			m = mm
		}
	}

	dst := net.nodes[dstIdx]
	lat := int64(net.latency(s.id, to))
	// Downlink serialization with cut-through: reception can begin once the
	// first bits arrive and the NIC is free.
	recvStart := later(sendStart+lat, dst.downFree)
	recvEnd := recvStart + int64(txTime(size, dst.down))
	dst.downFree = recvEnd
	dst.downBusy += time.Duration(recvEnd - recvStart)
	dst.bytesDown += uint64(size)
	deliverAt := later(recvEnd, sendEnd+lat)

	// Closure-free delivery: the message and endpoints ride in the event
	// itself, so Send allocates nothing in steady state.
	ev := net.schedule(deliverAt, dstIdx, evDeliver, nil)
	ev.msg = m
	ev.src = s
	ev.dst = dst

	// Speculative compute offload: the value the receiver will derive
	// from this immutable message is already fully determined, and the
	// virtual-time window until deliverAt is free wall-clock
	// parallelism. Precompute is idempotent (multicast re-sends the
	// same pointer) and touches no simulator state, so scheduling is
	// unaffected.
	if net.cfg.Compute.Active() {
		if sp, ok := m.(compute.Speculative); ok {
			sp.Precompute(net.cfg.Compute)
		}
	}
}

// After implements env.Context. The crash guard lives in evTimer
// dispatch rather than a wrapper closure, and the returned handle is
// bump-allocated from a slab, so steady-state timer churn costs
// ~1/timerSlabSize allocations per call.
//
//predis:hotpath
func (s *simNode) After(d time.Duration, fn func()) env.Timer {
	if d < 0 {
		d = 0
	}
	net := s.net
	ev := net.schedule(net.nowNs+int64(d), s.idx, evTimer, fn)
	return net.newTimer(ev)
}

// newTimer hands out a simTimer handle snapshotting ev's generation.
func (n *Network) newTimer(ev *event) *simTimer {
	if len(n.timerSlab) == cap(n.timerSlab) {
		n.timerSlab = make([]simTimer, 0, timerSlabSize) //predis:allocok slab refill, amortized to ~1/256 per After
	}
	n.timerSlab = append(n.timerSlab, simTimer{ev: ev, gen: ev.gen})
	return &n.timerSlab[len(n.timerSlab)-1]
}

func later(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func txTime(size int, rate Bandwidth) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(rate) * float64(time.Second))
}
