package simnet

import (
	"testing"
	"time"

	"predis/internal/env"
	"predis/internal/wire"
)

// ping is a fixed-size test message.
type ping struct {
	Seq  uint64
	Size uint32 // payload padding size
}

const pingType = wire.TypeRangeTest + 0x10

func (p *ping) Type() wire.Type { return pingType }
func (p *ping) WireSize() int   { return wire.FrameOverhead + 8 + 4 + int(p.Size) }
func (p *ping) EncodeBody(e *wire.Encoder) {
	e.U64(p.Seq)
	e.U32(p.Size)
	e.Raw(make([]byte, p.Size))
}

func decodePing(d *wire.Decoder) (wire.Message, error) {
	p := &ping{Seq: d.U64(), Size: d.U32()}
	d.Raw(int(p.Size))
	return p, d.Err()
}

func registerTestTypes() {
	if !wire.Registered(pingType) {
		wire.Register(pingType, "simnet-ping", decodePing)
	}
}

// recorder collects deliveries with their times.
type recorder struct {
	ctx     env.Context
	got     []recordedMsg
	onStart func(env.Context)
	onRecv  func(from wire.NodeID, m wire.Message)
}

type recordedMsg struct {
	from wire.NodeID
	m    wire.Message
	at   time.Time
}

func (r *recorder) Start(ctx env.Context) {
	r.ctx = ctx
	if r.onStart != nil {
		r.onStart(ctx)
	}
}

func (r *recorder) Receive(from wire.NodeID, m wire.Message) {
	r.got = append(r.got, recordedMsg{from: from, m: m, at: r.ctx.Now()})
	if r.onRecv != nil {
		r.onRecv(from, m)
	}
}

func TestLatencyOnlyDelivery(t *testing.T) {
	registerTestTypes()
	n := New(Config{Latency: UniformLatency(25 * time.Millisecond)})
	a := &recorder{}
	b := &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	a.ctx.Send(1, &ping{Seq: 1})
	n.Run(time.Second)
	if len(b.got) != 1 {
		t.Fatalf("b received %d messages", len(b.got))
	}
	if got := b.got[0].at.Sub(Epoch); got != 25*time.Millisecond {
		t.Fatalf("delivery at %v, want 25ms", got)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	registerTestTypes()
	// 1000 bytes/s uplink: a message of ~500B takes ~0.5s to serialize.
	n := New(Config{Uplink: 1000, Downlink: 0})
	a := &recorder{}
	b := &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	msg := &ping{Seq: 1, Size: 1000 - wire.FrameOverhead - 12} // exactly 1000B
	a.ctx.Send(1, msg)
	a.ctx.Send(1, msg) // queued behind the first
	n.Run(10 * time.Second)
	if len(b.got) != 2 {
		t.Fatalf("received %d", len(b.got))
	}
	d1 := b.got[0].at.Sub(Epoch)
	d2 := b.got[1].at.Sub(Epoch)
	if d1 != time.Second || d2 != 2*time.Second {
		t.Fatalf("deliveries at %v, %v; want 1s, 2s", d1, d2)
	}
}

func TestDownlinkContention(t *testing.T) {
	registerTestTypes()
	// Two senders with fast uplinks, one receiver with a slow downlink:
	// the second message must queue at the receiver NIC.
	n := New(Config{Uplink: 0, Downlink: 1000})
	a, b, c := &recorder{}, &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.AddNode(2, c)
	n.Start()
	msg := &ping{Seq: 1, Size: 1000 - wire.FrameOverhead - 12}
	a.ctx.Send(2, msg)
	b.ctx.Send(2, msg)
	n.Run(10 * time.Second)
	if len(c.got) != 2 {
		t.Fatalf("received %d", len(c.got))
	}
	if d := c.got[1].at.Sub(Epoch); d != 2*time.Second {
		t.Fatalf("second delivery at %v, want 2s (downlink queue)", d)
	}
}

func TestDeterminism(t *testing.T) {
	registerTestTypes()
	run := func() []time.Duration {
		n := New(Config{Uplink: Mbps100, Downlink: Mbps100, Latency: WANLatency(), Seed: 7})
		recs := make([]*recorder, 4)
		for i := range recs {
			recs[i] = &recorder{}
			n.AddNode(wire.NodeID(i), recs[i])
		}
		n.Start()
		// Every node multicasts a few messages of random-but-seeded sizes.
		for i, r := range recs {
			ctx := r.ctx
			for k := 0; k < 5; k++ {
				size := uint32(ctx.Rand().Intn(5000))
				for p := 0; p < 4; p++ {
					if p != i {
						ctx.Send(wire.NodeID(p), &ping{Seq: uint64(k), Size: size})
					}
				}
			}
		}
		n.Run(time.Second)
		var times []time.Duration
		for _, r := range recs {
			for _, g := range r.got {
				times = append(times, g.at.Sub(Epoch))
			}
		}
		return times
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) || len(t1) == 0 {
		t.Fatalf("runs delivered %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestTimersFireInOrderAndCancel(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	var fired []int
	r := &recorder{}
	n.AddNode(0, r)
	n.Start()
	ctx := r.ctx
	ctx.After(30*time.Millisecond, func() { fired = append(fired, 3) })
	ctx.After(10*time.Millisecond, func() { fired = append(fired, 1) })
	tm := ctx.After(20*time.Millisecond, func() { fired = append(fired, 2) })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	n.Run(time.Second)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCrashSuppressesTrafficAndTimers(t *testing.T) {
	registerTestTypes()
	n := New(Config{Latency: UniformLatency(5 * time.Millisecond)})
	a, b := &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	fired := false
	b.ctx.After(50*time.Millisecond, func() { fired = true })
	n.Crash(1)
	a.ctx.Send(1, &ping{Seq: 1})
	n.Run(100 * time.Millisecond)
	if len(b.got) != 0 {
		t.Fatal("crashed node received a message")
	}
	if fired {
		t.Fatal("crashed node's timer fired")
	}
	if !n.Crashed(1) {
		t.Fatal("Crashed(1) = false")
	}
	n.Restart(1)
	a.ctx.Send(1, &ping{Seq: 2})
	n.Run(300 * time.Millisecond)
	if len(b.got) != 1 {
		t.Fatalf("after restart got %d messages", len(b.got))
	}
}

func TestPartitionAndDropFilter(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	a, b := &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	n.SetPartition(func(from, to wire.NodeID) bool { return from == 0 && to == 1 })
	a.ctx.Send(1, &ping{Seq: 1})
	n.Run(time.Millisecond)
	if len(b.got) != 0 {
		t.Fatal("partitioned message delivered")
	}
	n.SetPartition(nil)
	n.SetDropFilter(func(from, to wire.NodeID, m wire.Message) bool {
		p, ok := m.(*ping)
		return ok && p.Seq == 2
	})
	a.ctx.Send(1, &ping{Seq: 2})
	a.ctx.Send(1, &ping{Seq: 3})
	n.Run(time.Second)
	if len(b.got) != 1 {
		t.Fatalf("got %d messages, want 1", len(b.got))
	}
	if b.got[0].m.(*ping).Seq != 3 {
		t.Fatal("wrong message survived the drop filter")
	}
}

func TestCopyOnDeliver(t *testing.T) {
	registerTestTypes()
	n := New(Config{CopyOnDeliver: true})
	a, b := &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	orig := &ping{Seq: 9, Size: 8}
	a.ctx.Send(1, orig)
	n.Run(time.Second)
	if len(b.got) != 1 {
		t.Fatalf("got %d", len(b.got))
	}
	if b.got[0].m == wire.Message(orig) {
		t.Fatal("CopyOnDeliver must not deliver the sender's pointer")
	}
	if b.got[0].m.(*ping).Seq != 9 {
		t.Fatal("copied message corrupted")
	}
}

func TestOnDeliverHookAndCounters(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	a, b := &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	var hooked int
	n.OnDeliver = func(from, to wire.NodeID, m wire.Message, at time.Time) { hooked++ }
	msg := &ping{Seq: 1, Size: 100}
	a.ctx.Send(1, msg)
	n.Run(time.Second)
	if hooked != 1 {
		t.Fatalf("hook fired %d times", hooked)
	}
	if n.Delivered() != 1 {
		t.Fatalf("Delivered = %d", n.Delivered())
	}
	if n.BytesSent() != uint64(msg.WireSize()) {
		t.Fatalf("BytesSent = %d, want %d", n.BytesSent(), msg.WireSize())
	}
}

func TestRunUntilIdleBounded(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	r := &recorder{}
	n.AddNode(0, r)
	n.Start()
	// A self-perpetuating timer chain would never drain.
	var rearm func()
	rearm = func() { r.ctx.After(time.Millisecond, rearm) }
	rearm()
	ran := n.RunUntilIdle(100)
	if ran != 100 {
		t.Fatalf("RunUntilIdle ran %d events, want 100", ran)
	}
}

func TestSendToUnknownOrSelf(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	r := &recorder{}
	n.AddNode(0, r)
	n.Start()
	r.ctx.Send(99, &ping{Seq: 1}) // unknown: silently dropped
	r.ctx.Send(0, &ping{Seq: 2})  // self-delivery goes through the loop
	n.Run(time.Second)
	if len(r.got) != 1 || r.got[0].m.(*ping).Seq != 2 {
		t.Fatalf("got %v", r.got)
	}
}

func TestWANLatencyMatrixSymmetric(t *testing.T) {
	lat := WANLatency()
	for a := wire.NodeID(0); a < 8; a++ {
		for b := wire.NodeID(0); b < 8; b++ {
			if lat(a, b) != lat(b, a) {
				t.Fatalf("asymmetric latency between %d and %d", a, b)
			}
			if lat(a, b) <= 0 {
				t.Fatalf("non-positive latency between %d and %d", a, b)
			}
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	n := New(Config{})
	n.AddNode(0, &recorder{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	n.AddNode(0, &recorder{})
}

func TestMulticastSkipsSelf(t *testing.T) {
	registerTestTypes()
	n := New(Config{})
	recs := make([]*recorder, 3)
	for i := range recs {
		recs[i] = &recorder{}
		n.AddNode(wire.NodeID(i), recs[i])
	}
	n.Start()
	env.Multicast(recs[0].ctx, []wire.NodeID{0, 1, 2}, &ping{Seq: 5})
	n.Run(time.Second)
	if len(recs[0].got) != 0 {
		t.Fatal("multicast delivered to self")
	}
	if len(recs[1].got) != 1 || len(recs[2].got) != 1 {
		t.Fatal("multicast missed a peer")
	}
}

// chirper is a Restartable handler with a self-re-arming timer chain that
// records every tick; it also pings a peer on each tick so the test can
// observe its traffic from outside.
type chirper struct {
	ctx      env.Context
	peer     wire.NodeID
	period   time.Duration
	ticks    []time.Duration
	restarts int
	seq      uint64
}

func (c *chirper) Start(ctx env.Context) {
	c.ctx = ctx
	c.arm()
}

func (c *chirper) arm() {
	c.ctx.After(c.period, func() {
		c.ticks = append(c.ticks, c.ctx.Now().Sub(Epoch))
		c.seq++
		c.ctx.Send(c.peer, &ping{Seq: c.seq})
		c.arm()
	})
}

// OnRestart implements env.Restartable: re-arm the timer chain the crash
// killed.
func (c *chirper) OnRestart() {
	c.restarts++
	c.arm()
}

func (c *chirper) Receive(from wire.NodeID, m wire.Message) {}

// TestRestartInvokesRestartableHook crashes a node whose only liveness
// comes from a self-re-arming timer chain, restarts it, and asserts the
// OnRestart hook ran and the chain resumed: without the hook the node
// would stay silent forever (the crash suppressed the pending fire).
func TestRestartInvokesRestartableHook(t *testing.T) {
	registerTestTypes()
	n := New(Config{Latency: UniformLatency(time.Millisecond)})
	c := &chirper{peer: 1, period: 10 * time.Millisecond}
	sink := &recorder{}
	n.AddNode(0, c)
	n.AddNode(1, sink)
	n.At(35*time.Millisecond, func() { n.Crash(0) })
	n.At(80*time.Millisecond, func() { n.Restart(0) })
	n.Start()
	n.Run(150 * time.Millisecond)

	if c.restarts != 1 {
		t.Fatalf("OnRestart ran %d times, want 1", c.restarts)
	}
	var before, after int
	for _, at := range c.ticks {
		switch {
		case at < 35*time.Millisecond:
			before++
		case at >= 80*time.Millisecond:
			after++
		default:
			t.Fatalf("tick at %v inside the crash window", at)
		}
	}
	if before != 3 {
		t.Fatalf("%d pre-crash ticks, want 3", before)
	}
	if after < 5 {
		t.Fatalf("%d post-restart ticks, want ≥ 5 (chain did not resume)", after)
	}
	// The final tick can land exactly on the run horizon, leaving its ping
	// undelivered; allow that one message of slack.
	if len(sink.got) < before+after-1 {
		t.Fatalf("sink saw %d pings, chirper ticked %d times", len(sink.got), before+after)
	}
}

// TestRestartWithoutRestartableStaysQuiet documents the contract for
// handlers that do NOT implement env.Restartable: the node becomes
// reachable again but its dead timer chain stays dead.
func TestRestartWithoutRestartableStaysQuiet(t *testing.T) {
	registerTestTypes()
	n := New(Config{Latency: UniformLatency(time.Millisecond)})
	ticks := 0
	a := &recorder{}
	a.onStart = func(ctx env.Context) {
		var arm func()
		arm = func() {
			ctx.After(10*time.Millisecond, func() { ticks++; arm() })
		}
		arm()
	}
	b := &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.At(35*time.Millisecond, func() { n.Crash(0) })
	n.At(50*time.Millisecond, func() { n.Restart(0) })
	n.Start()
	n.Run(200 * time.Millisecond)
	if ticks != 3 {
		t.Fatalf("plain handler ticked %d times, want 3 (chain must die at crash)", ticks)
	}
	// ...but message delivery to the node resumed.
	b.ctx.Send(0, &ping{Seq: 1})
	n.Run(250 * time.Millisecond)
	if len(a.got) != 1 {
		t.Fatalf("restarted node got %d messages, want 1", len(a.got))
	}
}

// TestCrashRestartDeterministic replays a scripted crash/restart run
// twice and demands bit-identical tick traces and delivery counts.
func TestCrashRestartDeterministic(t *testing.T) {
	registerTestTypes()
	run := func() ([]time.Duration, int, uint64) {
		n := New(Config{Latency: LANLatency(), Seed: 42})
		c := &chirper{peer: 1, period: 7 * time.Millisecond}
		sink := &recorder{}
		n.AddNode(0, c)
		n.AddNode(1, sink)
		n.At(20*time.Millisecond, func() { n.Crash(0) })
		n.At(51*time.Millisecond, func() { n.Restart(0) })
		n.Start()
		n.Run(120 * time.Millisecond)
		return c.ticks, len(sink.got), n.Delivered()
	}
	t1, g1, d1 := run()
	t2, g2, d2 := run()
	if g1 != g2 || d1 != d2 || len(t1) != len(t2) {
		t.Fatalf("nondeterministic: got %d/%d msgs, %d/%d delivered, %d/%d ticks",
			g1, g2, d1, d2, len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("tick %d at %v vs %v", i, t1[i], t2[i])
		}
	}
	if g1 == 0 {
		t.Fatal("empty run")
	}
}

// sendProbe builds a fresh network with nodes 0 and 1 and returns it with
// the two recorders. Bandwidth is finite so uplink busy time is non-zero.
func sendProbe(t *testing.T, cfg Config) (*Network, *recorder, *recorder) {
	t.Helper()
	registerTestTypes()
	if cfg.Uplink == 0 {
		cfg.Uplink = Mbps100
	}
	if cfg.Downlink == 0 {
		cfg.Downlink = Mbps100
	}
	n := New(cfg)
	a, b := &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	return n, a, b
}

// TestSendAccountingUniformAcrossDrops pins the uniform charging policy:
// every drop path charges the live sender's uplink and the byte counters
// exactly like a delivered message, and increments exactly one drop cause.
// Before the fix, unknown destinations charged nothing while crashed
// destinations charged everything — asymmetric and untestable.
func TestSendAccountingUniformAcrossDrops(t *testing.T) {
	msg := &ping{Seq: 1, Size: 1000}
	size := uint64(msg.WireSize())

	check := func(name string, n *Network, wantDrops DropCounts) {
		t.Helper()
		if n.BytesSent() != size {
			t.Fatalf("%s: BytesSent = %d, want %d (drop paths must charge bytes)", name, n.BytesSent(), size)
		}
		sent, _ := n.NodeBytes(0)
		if sent != size {
			t.Fatalf("%s: sender NodeBytes = %d, want %d", name, sent, size)
		}
		up, _ := n.NICBusy(0)
		if up <= 0 {
			t.Fatalf("%s: sender uplink busy = %v, want > 0 (drop paths must charge uplink)", name, up)
		}
		if n.Dropped() != wantDrops {
			t.Fatalf("%s: Dropped = %+v, want %+v", name, n.Dropped(), wantDrops)
		}
		if n.Delivered() != 0 {
			t.Fatalf("%s: Delivered = %d, want 0", name, n.Delivered())
		}
		if n.Sends() != n.Delivered()+n.Dropped().Total() {
			t.Fatalf("%s: invariant broken: sends=%d delivered=%d drops=%d",
				name, n.Sends(), n.Delivered(), n.Dropped().Total())
		}
	}

	t.Run("unknown", func(t *testing.T) {
		n, a, _ := sendProbe(t, Config{})
		a.ctx.Send(99, msg)
		n.Run(time.Second)
		check("unknown", n, DropCounts{Unknown: 1})
	})
	t.Run("crashed-dest", func(t *testing.T) {
		n, a, _ := sendProbe(t, Config{})
		n.Crash(1)
		a.ctx.Send(1, msg)
		n.Run(time.Second)
		check("crashed-dest", n, DropCounts{Crashed: 1})
	})
	t.Run("partitioned", func(t *testing.T) {
		n, a, _ := sendProbe(t, Config{})
		n.SetPartition(func(from, to wire.NodeID) bool { return true })
		a.ctx.Send(1, msg)
		n.Run(time.Second)
		check("partitioned", n, DropCounts{Partitioned: 1})
	})
	t.Run("filtered", func(t *testing.T) {
		n, a, _ := sendProbe(t, Config{})
		n.SetDropFilter(func(from, to wire.NodeID, m wire.Message) bool { return true })
		a.ctx.Send(1, msg)
		n.Run(time.Second)
		check("filtered", n, DropCounts{Filtered: 1})
	})
	t.Run("lost", func(t *testing.T) {
		n, a, _ := sendProbe(t, Config{LossProbability: 1})
		a.ctx.Send(1, msg)
		n.Run(time.Second)
		check("lost", n, DropCounts{Lost: 1})
		if n.Lost() != 1 {
			t.Fatalf("Lost() = %d, want 1", n.Lost())
		}
	})
	t.Run("crashed-sender-charges-nothing", func(t *testing.T) {
		n, a, _ := sendProbe(t, Config{})
		n.Crash(0)
		a.ctx.Send(1, msg)
		n.Run(time.Second)
		if n.Sends() != 0 || n.BytesSent() != 0 || n.Dropped().Total() != 0 {
			t.Fatalf("crashed sender must be inert: sends=%d bytes=%d drops=%+v",
				n.Sends(), n.BytesSent(), n.Dropped())
		}
		up, _ := n.NICBusy(0)
		if up != 0 {
			t.Fatalf("crashed sender uplink busy = %v, want 0", up)
		}
	})
}

// TestInFlightCrashCountsAsCrashedDrop covers the delivery-time drop path:
// a message already on the wire when the receiver crashes is counted under
// Crashed, keeping the sends = delivered + drops invariant.
func TestInFlightCrashCountsAsCrashedDrop(t *testing.T) {
	n, a, b := sendProbe(t, Config{Latency: UniformLatency(50 * time.Millisecond)})
	a.ctx.Send(1, &ping{Seq: 1, Size: 10})
	n.At(10*time.Millisecond, func() { n.Crash(1) })
	n.Run(time.Second)
	if len(b.got) != 0 {
		t.Fatalf("crashed receiver got %d messages", len(b.got))
	}
	if got := n.Dropped(); got != (DropCounts{Crashed: 1}) {
		t.Fatalf("Dropped = %+v, want Crashed:1", got)
	}
	if n.Sends() != n.Delivered()+n.Dropped().Total() {
		t.Fatalf("invariant broken: sends=%d delivered=%d drops=%d",
			n.Sends(), n.Delivered(), n.Dropped().Total())
	}
}

// TestSendInvariantUnderLoss checks the accounting invariant over a noisy
// bulk run: every live send is either delivered or counted in exactly one
// drop cause.
func TestSendInvariantUnderLoss(t *testing.T) {
	n, a, b := sendProbe(t, Config{LossProbability: 0.3, Seed: 7})
	for i := 0; i < 200; i++ {
		a.ctx.Send(1, &ping{Seq: uint64(i), Size: 10})
		b.ctx.Send(0, &ping{Seq: uint64(i), Size: 10})
	}
	n.Run(time.Second)
	if n.Sends() != 400 {
		t.Fatalf("Sends = %d, want 400", n.Sends())
	}
	if n.Delivered()+n.Dropped().Total() != n.Sends() {
		t.Fatalf("invariant broken: delivered=%d drops=%+v sends=%d",
			n.Delivered(), n.Dropped(), n.Sends())
	}
	if n.Dropped().Lost == 0 || n.Delivered() == 0 {
		t.Fatalf("want both losses and deliveries: %+v delivered=%d", n.Dropped(), n.Delivered())
	}
}

// TestNICAccountingAndLinkLoads checks the sampler-facing accessors:
// busy time matches serialization time, per-node and per-link bytes match
// what was sent, and LinkLoads is sorted.
func TestNICAccountingAndLinkLoads(t *testing.T) {
	n, a, b := sendProbe(t, Config{})
	msg := &ping{Seq: 1, Size: 125_000} // ≈10ms at 100 Mbps
	a.ctx.Send(1, msg)
	b.ctx.Send(0, &ping{Seq: 2, Size: 0})
	n.Run(time.Second)

	size := uint64(msg.WireSize())
	wantBusy := time.Duration(float64(size) / float64(Mbps100) * float64(time.Second))
	up, _ := n.NICBusy(0)
	if up != wantBusy {
		t.Fatalf("uplink busy = %v, want %v", up, wantBusy)
	}
	_, down := n.NICBusy(1)
	if down != wantBusy {
		t.Fatalf("downlink busy = %v, want %v", down, wantBusy)
	}
	sent0, recv0 := n.NodeBytes(0)
	if sent0 != size || recv0 == 0 {
		t.Fatalf("node 0 bytes = (%d, %d)", sent0, recv0)
	}
	loads := n.LinkLoads()
	if len(loads) != 2 {
		t.Fatalf("LinkLoads = %+v", loads)
	}
	if loads[0].From != 0 || loads[0].To != 1 || loads[0].Bytes != size {
		t.Fatalf("link 0→1 = %+v, want %d bytes", loads[0], size)
	}
	if loads[1].From != 1 || loads[1].To != 0 {
		t.Fatalf("LinkLoads not sorted: %+v", loads)
	}
	if up2, down2 := n.NICBusy(99); up2 != 0 || down2 != 0 {
		t.Fatal("unknown node NICBusy must be zero")
	}
	ids := n.NodeIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("NodeIDs = %v", ids)
	}
}
