package simnet

import (
	"time"

	"predis/internal/wire"
)

// The paper's WAN experiments place nodes in four Alibaba Cloud regions:
// Ulanqab (CN-north), Shanghai (CN-east), Chengdu (CN-southwest), and
// Shenzhen (CN-south). We model one-way inter-region delays with typical
// mainland-China backbone figures (public RTT measurements halved);
// intra-region delay is ~1 ms. The paper's LAN experiments emulate a WAN
// with `tc` at a uniform 25 ms, which UniformLatency(25ms) reproduces.
const (
	RegionUlanqab = iota
	RegionShanghai
	RegionChengdu
	RegionShenzhen
	// NumRegions is the number of WAN regions in the paper's testbed.
	NumRegions
)

// wanOneWay[i][j] is the one-way delay between regions i and j.
var wanOneWay = [NumRegions][NumRegions]time.Duration{
	RegionUlanqab:  {1 * time.Millisecond, 14 * time.Millisecond, 17 * time.Millisecond, 20 * time.Millisecond},
	RegionShanghai: {14 * time.Millisecond, 1 * time.Millisecond, 15 * time.Millisecond, 13 * time.Millisecond},
	RegionChengdu:  {17 * time.Millisecond, 15 * time.Millisecond, 1 * time.Millisecond, 12 * time.Millisecond},
	RegionShenzhen: {20 * time.Millisecond, 13 * time.Millisecond, 12 * time.Millisecond, 1 * time.Millisecond},
}

// WANLatency returns a latency function that assigns node i to region
// i mod 4 (round-robin across the paper's four regions) and uses the
// backbone delay matrix.
func WANLatency() func(from, to wire.NodeID) time.Duration {
	return WANLatencyWithRegions(func(id wire.NodeID) int { return int(id) % NumRegions })
}

// WANLatencyWithRegions returns a latency function using a caller-supplied
// node→region assignment.
func WANLatencyWithRegions(region func(wire.NodeID) int) func(from, to wire.NodeID) time.Duration {
	return func(from, to wire.NodeID) time.Duration {
		rf, rt := region(from), region(to)
		if rf < 0 || rf >= NumRegions || rt < 0 || rt >= NumRegions {
			return 25 * time.Millisecond
		}
		return wanOneWay[rf][rt]
	}
}

// LANLatency reproduces the paper's LAN configuration: traffic control adds
// 25 ms to every link.
func LANLatency() func(from, to wire.NodeID) time.Duration {
	return UniformLatency(25 * time.Millisecond)
}
