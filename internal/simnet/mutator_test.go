package simnet

import (
	"testing"
	"time"

	"predis/internal/wire"
)

// badframe always fails to deliver: it implements wire.Defective, the
// marker the dispatcher consults on the zero-copy path.
type badframe struct{ Size uint32 }

const badframeType = wire.TypeRangeTest + 0x11

func (b *badframe) Type() wire.Type            { return badframeType }
func (b *badframe) WireSize() int              { return wire.FrameOverhead + int(b.Size) }
func (b *badframe) EncodeBody(e *wire.Encoder) { e.Raw(make([]byte, b.Size)) }
func (b *badframe) Defective() bool            { return true }

func TestMutatorSubstitutesContentPerRecipient(t *testing.T) {
	registerTestTypes()
	n := New(Config{Latency: UniformLatency(time.Millisecond)})
	a, b, c := &recorder{}, &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.AddNode(2, c)
	n.SetMutator(func(from, to wire.NodeID, m wire.Message) wire.Message {
		if from != 0 || to != 1 {
			return nil // nil = leave this recipient's copy unchanged
		}
		p := m.(*ping)
		return &ping{Seq: p.Seq + 100, Size: p.Size}
	})
	n.Start()
	orig := &ping{Seq: 7}
	a.ctx.Send(1, orig)
	a.ctx.Send(2, orig)
	n.Run(time.Second)

	if len(b.got) != 1 || b.got[0].m.(*ping).Seq != 107 {
		t.Fatalf("targeted recipient got %+v, want mutated Seq=107", b.got)
	}
	if len(c.got) != 1 || c.got[0].m.(*ping).Seq != 7 {
		t.Fatalf("bystander got %+v, want original Seq=7", c.got)
	}
	if orig.Seq != 7 {
		t.Fatal("mutator modified the sender's original message")
	}
}

func TestMutatorDoesNotChangeTiming(t *testing.T) {
	registerTestTypes()
	// 1000 B/s uplink, 1000-byte frame: delivery at exactly t=1s. A
	// mutator that swaps in a tiny message must not change that — the
	// bandwidth charge belongs to the frame the sender serialized.
	run := func(mutate bool) time.Duration {
		n := New(Config{Uplink: 1000, Downlink: 0})
		a, b := &recorder{}, &recorder{}
		n.AddNode(0, a)
		n.AddNode(1, b)
		if mutate {
			n.SetMutator(func(from, to wire.NodeID, m wire.Message) wire.Message {
				return &ping{Seq: 99} // far smaller than the original
			})
		}
		n.Start()
		a.ctx.Send(1, &ping{Seq: 1, Size: 1000 - wire.FrameOverhead - 12})
		n.Run(10 * time.Second)
		if len(b.got) != 1 {
			t.Fatalf("received %d messages", len(b.got))
		}
		return b.got[0].at.Sub(Epoch)
	}
	plain, mutated := run(false), run(true)
	if plain != mutated {
		t.Fatalf("mutation changed delivery time: %v vs %v", plain, mutated)
	}
	if plain != time.Second {
		t.Fatalf("delivery at %v, want 1s", plain)
	}
}

func TestDefectiveFrameBecomesCountedDrop(t *testing.T) {
	registerTestTypes()
	n := New(Config{Latency: UniformLatency(time.Millisecond)})
	a, b := &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	a.ctx.Send(1, &badframe{Size: 64})
	a.ctx.Send(1, &ping{Seq: 1})
	n.Run(time.Second)

	if len(b.got) != 1 || b.got[0].m.(*ping).Seq != 1 {
		t.Fatalf("want only the decodable message delivered, got %+v", b.got)
	}
	d := n.Dropped()
	if d.Undecodable != 1 {
		t.Fatalf("Undecodable = %d, want 1", d.Undecodable)
	}
	if n.Sends() != n.Delivered()+d.Total() {
		t.Fatalf("accounting broke: sends=%d delivered=%d dropped=%d",
			n.Sends(), n.Delivered(), d.Total())
	}
}

func TestCopyOnDeliverDecodeFailureIsCountedNotFatal(t *testing.T) {
	registerTestTypes()
	// CopyOnDeliver round-trips every frame through the codec; a frame
	// whose body cannot decode must degrade to an Undecodable drop, never
	// a panic. truncping encodes a lying length prefix.
	n := New(Config{CopyOnDeliver: true, Latency: UniformLatency(time.Millisecond)})
	a, b := &recorder{}, &recorder{}
	n.AddNode(0, a)
	n.AddNode(1, b)
	n.Start()
	a.ctx.Send(1, &truncping{})
	a.ctx.Send(1, &ping{Seq: 2})
	n.Run(time.Second)

	if len(b.got) != 1 || b.got[0].m.(*ping).Seq != 2 {
		t.Fatalf("want only the well-formed message delivered, got %d", len(b.got))
	}
	if d := n.Dropped(); d.Undecodable != 1 {
		t.Fatalf("Undecodable = %d, want 1", d.Undecodable)
	}
}

// truncping declares a larger body than it encodes, so decoding truncates.
type truncping struct{}

const truncpingType = wire.TypeRangeTest + 0x12

func (p *truncping) Type() wire.Type            { return truncpingType }
func (p *truncping) WireSize() int              { return wire.FrameOverhead + 4 }
func (p *truncping) EncodeBody(e *wire.Encoder) { e.U32(16) } // promises 16 bytes, sends none

func init() {
	wire.Register(truncpingType, "simnet-truncping", func(d *wire.Decoder) (wire.Message, error) {
		d.Raw(int(d.U32()))
		return &truncping{}, d.Err()
	})
}
