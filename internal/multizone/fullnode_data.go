package multizone

import (
	"bytes"
	"errors"
	"sort"
	"time"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/exec"
	"predis/internal/ledger"
	"predis/internal/obs"
	"predis/internal/wire"
)

// onStripe handles the stripe data plane (§IV-D): verify, store, forward
// down the subscription tree, and reassemble the bundle once n_c−f stripes
// arrived.
func (f *FullNode) onStripe(from wire.NodeID, m *StripeMsg) {
	// Starvation liveness, before any dedup: a subscribed sender whose
	// stripes systematically arrive after the n_c−f fastest is still
	// contributing — only silence marks a withholder (forgeries are charged
	// by the offense counter below, never by the starvation detector).
	if sd, ok := f.stripeSender[m.Index]; ok && sd == from {
		f.stripeSeen[m.Index] = f.ctx.Now()
	}
	headerHash := m.Header.Hash()
	p := f.partials[headerHash]
	if p != nil && (p.done || p.stripes[m.Index] != nil) {
		return // duplicate stripe
	}
	// Already assembled via another path (bundle pull)?
	if f.mp.Bundle(m.Header.Producer, m.Header.Height) != nil {
		f.forwardStripe(from, m)
		return
	}
	if err := f.cfg.Striper.VerifyStripe(m); err != nil {
		f.ctx.Logf("multizone: bad stripe from %d: %v", from, err)
		f.rejected++
		f.recordOffense(from)
		// Re-request the damaged bundle from an alternate holder — but
		// only when the header itself is authentic (a partial we already
		// signature-checked, or one that verifies now); a forged header's
		// coordinates are not worth chasing.
		if p != nil || f.headerAuthentic(&m.Header) {
			f.scheduleRefetch(m.Header, from)
		}
		return
	}
	if p == nil {
		// Verify the header signature once per bundle.
		if !f.headerAuthentic(&m.Header) {
			f.ctx.Logf("multizone: stripe with bad header signature from %d", from)
			f.rejected++
			f.recordOffense(from)
			return
		}
		p = &partialBundle{header: m.Header, stripes: make([]*StripeMsg, f.cfg.NC)}
		f.partials[headerHash] = p
	}
	p.stripes[m.Index] = m
	p.have++
	f.stripesIn++
	f.forwardStripe(from, m)

	if p.have >= f.cfg.Striper.MinStripes() {
		b, err := f.cfg.Striper.Reassemble(p.header, p.stripes)
		if err != nil {
			// Possible with exactly n_c−f stripes if one was forged with a
			// colliding proof; wait for more stripes.
			if p.have >= f.cfg.NC {
				f.ctx.Logf("multizone: bundle %s unreconstructable: %v", headerHash.Short(), err)
				delete(f.partials, headerHash)
			}
			return
		}
		p.done = true
		f.noteStarvation(p)
		p.stripes = nil // free shard memory; header stays to dedupe
		f.storeBundle(b, false)
		f.tryCompleteBlocks()
	}
}

// forwardStripe relays a stripe to this node's subscribers for its index
// (in ID order, so map iteration never affects the wire).
func (f *FullNode) forwardStripe(from wire.NodeID, m *StripeMsg) {
	subs := f.subscribers[m.Index]
	if len(subs) == 0 {
		return
	}
	ids := make([]wire.NodeID, 0, len(subs))
	for id := range subs {
		if id != from {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f.ctx.Send(id, m)
	}
}

// storeBundle inserts an assembled or pulled bundle into the local chains.
// Out-of-order arrivals are buffered by the mempool and linked when the
// gap fills; verify selects full verification for pulled bundles (stripe
// reassembly already verified body and signature).
func (f *FullNode) storeBundle(b *core.Bundle, verify bool) {
	res, _, miss, err := f.mp.AddBundle(b, verify)
	switch {
	case err != nil:
		if !errors.Is(err, core.ErrBannedProducer) {
			f.ctx.Logf("multizone: bundle rejected: %v", err)
		}
		return
	case res == core.Buffered && miss != nil:
		// Pull the gap over the backup path, with capped-backoff retries
		// rotating across candidate holders (backup peers first — they are
		// in another zone, so correlated loss is unlikely — then the stripe
		// sender, then the producing consensus node).
		f.schedulePull(miss.Producer, miss.From, miss.To)
	case res == core.Added:
		f.bundles++
		// stripe_distributed: distributor anchor → bundle assembled at this
		// full node (first completion wins per node).
		f.cfg.Trace.SpanSinceMark(obs.StageStripeDistributed,
			obs.BundleKey(b.Header.Producer, b.Header.Height), f.cfg.Self, f.ctx.Now())
		if f.cfg.OnBundle != nil {
			f.cfg.OnBundle(b)
		}
	}
}

// pullTargets lists candidate holders for a producer's bundles in
// preference order; schedulePull rotates through them across retries.
func (f *FullNode) pullTargets(producer wire.NodeID) []wire.NodeID {
	out := make([]wire.NodeID, 0, len(f.cfg.BackupPeers)+2)
	seen := make(map[wire.NodeID]bool, len(f.cfg.BackupPeers)+2)
	add := func(id wire.NodeID) {
		if id != f.cfg.Self && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if len(f.cfg.BackupPeers) > 0 {
		add(f.cfg.BackupPeers[int(producer)%len(f.cfg.BackupPeers)])
	}
	if sd, ok := f.stripeSender[uint8(producer)%uint8(f.cfg.NC)]; ok {
		add(sd)
	}
	for _, p := range f.cfg.BackupPeers {
		add(p)
	}
	add(producer % wire.NodeID(f.cfg.NC))
	return out
}

// onBlock handles a Predis block arriving over the relayer tree: verify,
// forward, and complete once every referenced bundle is locally held.
func (f *FullNode) onBlock(from wire.NodeID, blk *core.PredisBlock) {
	h := blk.Hash()
	if _, seen := f.seenBlocks[h]; seen {
		return
	}
	if int(blk.Leader) >= f.cfg.NC ||
		!f.cfg.Signer.Verify(int(blk.Leader), h, blk.Sig) {
		f.ctx.Logf("multizone: block with bad signature from %d", from)
		return
	}
	f.seenBlocks[h] = blk.Height
	// A live block leaping past our head means we missed blocks (restart,
	// late join, or lost stripes): back-fill the gap immediately instead
	// of waiting for the periodic digest, which a zone without backup
	// peers never even sends.
	if blk.Height > f.lastHeight+1 {
		f.StartCatchup()
		if cu := f.catchup; cu != nil && blk.Height-1 > cu.target {
			cu.target = blk.Height - 1
		}
	}
	// Forward to every subscriber (each at most once, in ID order).
	msg := &ZoneBlock{Block: blk}
	for _, id := range f.sortedSubscribers() {
		if id != from {
			f.ctx.Send(id, msg)
		}
	}
	f.pendBlocks = append(f.pendBlocks, blk)
	f.tryCompleteBlocksFrom(from)
}

// specEntry is one speculatively delivered proposed block.
type specEntry struct {
	blk *core.PredisBlock
	at  time.Time
}

// onSpecBlock buffers a *proposed* block pushed ahead of the consensus
// decision (streaming commit): verify the leader signature, open the
// speculation window, forward down the subscription tree, and pre-fetch
// any referenced bundles with no stripes in flight. The buffer never
// completes a block — only the ordered ZoneBlock does — so a Byzantine
// leader pushing garbage proposals costs bandwidth, not safety.
func (f *FullNode) onSpecBlock(from wire.NodeID, blk *core.PredisBlock) {
	h := blk.Hash()
	if _, seen := f.seenBlocks[h]; seen {
		return // the ordered copy already arrived; nothing left to speculate on
	}
	if blk.Height <= f.lastHeight {
		return // stale proposal below our completed head
	}
	if _, ok := f.specBlocks[h]; ok {
		return // duplicate push
	}
	if int(blk.Leader) >= f.cfg.NC ||
		!f.cfg.Signer.Verify(int(blk.Leader), h, blk.Sig) {
		f.ctx.Logf("multizone: speculative block with bad signature from %d", from)
		return
	}
	f.specBlocks[h] = &specEntry{blk: blk, at: f.ctx.Now()}
	// Open the speculation window on this node's timeline; it closes when
	// the ordered block finalizes the buffer (End) or the proposal is
	// retracted (Discard). First proposal wins per (height, node).
	f.cfg.Trace.Begin(obs.StageSpecDistributed, obs.BlockKey(blk.Height),
		f.cfg.Self, f.ctx.Now())
	msg := &ZoneSpec{Block: blk}
	for _, id := range f.sortedSubscribers() {
		if id != from {
			f.ctx.Send(id, msg)
		}
	}
	f.prefetchSpec(from, blk)
}

// prefetchSpec pulls bundles a speculative block references that are
// neither assembled nor being assembled locally: when the stripes for a
// cut were lost, the pull overlaps the remaining consensus rounds
// instead of starting after commit. In the common case every referenced
// bundle already has a partial (stripes ship at bundle-store time, ahead
// of the proposal), so the pre-fetch stays silent and costs nothing.
func (f *FullNode) prefetchSpec(from wire.NodeID, blk *core.PredisBlock) {
	inflight := make(map[wire.NodeID]uint64) // producer → highest height with stripes in flight
	for _, p := range f.partials {
		if h := p.header.Height; h > inflight[p.header.Producer] {
			inflight[p.header.Producer] = h
		}
	}
	tips := f.mp.Tips()
	for i, c := range blk.Cuts {
		if i >= len(tips) {
			break
		}
		have := tips[i]
		if fl := inflight[wire.NodeID(i)]; fl > have {
			have = fl
		}
		if c.Height > have {
			f.ctx.Send(from, &core.BundleRequest{
				Producer: wire.NodeID(i), From: have + 1, To: c.Height,
			})
		}
	}
}

// onSpecDiscard retracts a buffered speculative block: the consensus
// engine evicted the proposal (view change, fork loss). The discard is
// unauthenticated — forging one costs the victim only the speculation
// latency win, never safety or liveness, since finalization always rides
// the ordered ZoneBlock (and a re-proposal is pushed afresh).
func (f *FullNode) onSpecDiscard(from wire.NodeID, m *ZoneSpecDiscard) {
	ent, ok := f.specBlocks[m.Hash]
	if !ok || ent.blk.Height != m.Height {
		return
	}
	delete(f.specBlocks, m.Hash)
	f.specWaste++
	f.cfg.Trace.Discard(obs.StageSpecDistributed, obs.BlockKey(m.Height),
		f.cfg.Self, f.ctx.Now())
	// Forward the retraction along the same tree the spec travelled; the
	// buffered-entry guard above makes re-forwarding loop-free.
	for _, id := range f.sortedSubscribers() {
		if id != from {
			f.ctx.Send(id, m)
		}
	}
}

// settleSpec resolves the speculative buffer against a completed block:
// the matching entry is a hit (its speculation window closes), and every
// other entry at or below the committed height lost its race — the chain
// moved past it, so it is waste.
func (f *FullNode) settleSpec(blk *core.PredisBlock) {
	if len(f.specBlocks) == 0 {
		return
	}
	now := f.ctx.Now()
	if h := blk.Hash(); f.specBlocks[h] != nil {
		delete(f.specBlocks, h)
		f.specHits++
		f.cfg.Trace.End(obs.StageSpecDistributed, obs.BlockKey(blk.Height),
			f.cfg.Self, now)
	}
	f.discardSpec(now, func(ent *specEntry) bool {
		return ent.blk.Height <= blk.Height
	})
}

// discardSpec drops every spec-buffer entry matching lose as waste. Losers
// are collected first and discarded in (height, hash) order so the trace
// spans record identically regardless of map iteration order.
func (f *FullNode) discardSpec(now time.Time, lose func(*specEntry) bool) {
	var losers []crypto.Hash
	for h, ent := range f.specBlocks {
		if lose(ent) {
			losers = append(losers, h)
		}
	}
	sort.Slice(losers, func(i, j int) bool {
		a, b := f.specBlocks[losers[i]], f.specBlocks[losers[j]]
		if a.blk.Height != b.blk.Height {
			return a.blk.Height < b.blk.Height
		}
		return bytes.Compare(losers[i][:], losers[j][:]) < 0
	})
	for _, h := range losers {
		ent := f.specBlocks[h]
		delete(f.specBlocks, h)
		f.specWaste++
		f.cfg.Trace.Discard(obs.StageSpecDistributed, obs.BlockKey(ent.blk.Height),
			f.cfg.Self, now)
	}
}

// tryCompleteBlocks retries pending blocks after new bundles arrived.
func (f *FullNode) tryCompleteBlocks() { f.tryCompleteBlocksFrom(wire.NoNode) }

// tryCompleteBlocksFrom additionally knows who sent the newest block, so
// missing bundles can be pulled from the block sender (§IV-D).
func (f *FullNode) tryCompleteBlocksFrom(sender wire.NodeID) {
	progress := true
	for progress {
		progress = false
		for i, blk := range f.pendBlocks {
			if blk == nil {
				continue
			}
			if blk.Parent != f.lastBlock {
				continue // must complete the parent first
			}
			missing, err := f.mp.ValidatePredisBlock(blk, f.lastBlock, f.lastCuts)
			switch {
			case err == nil:
				bundles := f.mp.BlockBundles(blk, f.lastCuts)
				txs := core.BlockTxs(bundles)
				f.mp.ApplyCommit(blk)
				f.lastCuts = blk.CutHeights()
				f.lastBlock = blk.Hash()
				f.lastHeight = blk.Height
				f.blocks++
				f.pendBlocks[i] = nil
				f.pushRecentBlock(blk)
				f.settleSpec(blk)
				progress = true
				// Execute before persisting so the ledger entry commits
				// to the post-block account state, not just the ordering.
				var stateRoot crypto.Hash
				if f.cfg.Executor != nil {
					var r exec.Result
					if f.cfg.ExecSerial {
						r = f.cfg.Executor.ExecuteBlockSerial(blk.Height, txs)
					} else {
						r = f.cfg.Executor.ExecuteBlock(compute.PoolOf(f.ctx), blk.Height, txs)
					}
					stateRoot = r.StateRoot
					now := f.ctx.Now()
					f.cfg.Trace.Span(obs.StageExecuted,
						obs.BlockKey(blk.Height), f.cfg.Self, now, now)
					if f.cfg.OnExecute != nil {
						f.cfg.OnExecute(r)
					}
				}
				if f.cfg.Ledger != nil {
					if lerr := f.cfg.Ledger.Append(ledger.Entry{
						Height:    blk.Height,
						Hash:      blk.Hash(),
						Parent:    blk.Parent,
						TxRoot:    blk.TxRoot,
						StateRoot: stateRoot,
						TxCount:   uint32(len(txs)),
					}); lerr != nil {
						f.ctx.Logf("multizone: ledger append: %v", lerr)
					}
				}
				// fullnode_delivered: distributor anchor → block fully
				// reconstructed (Predis block + every referenced bundle).
				f.cfg.Trace.SpanSinceMark(obs.StageFullNodeDelivered,
					obs.BlockKey(blk.Height), f.cfg.Self, f.ctx.Now())
				if f.cfg.OnBlockComplete != nil {
					f.cfg.OnBlockComplete(blk, len(txs))
				}
			case errors.Is(err, core.ErrBlockMissing):
				target := sender
				if target == wire.NoNode {
					continue
				}
				for _, ms := range missing {
					f.ctx.Send(target, &core.BundleRequest{
						Producer: ms.Producer, From: ms.From, To: ms.To,
					})
				}
			default:
				f.ctx.Logf("multizone: block %d invalid: %v", blk.Height, err)
				f.pendBlocks[i] = nil
			}
		}
	}
	// Compact completed slots.
	kept := f.pendBlocks[:0]
	for _, blk := range f.pendBlocks {
		if blk != nil {
			kept = append(kept, blk)
		}
	}
	f.pendBlocks = kept
	f.checkCatchupDone()
}

// onBundleRequest serves bundle pulls from peers (backup connections and
// block-completion fetches).
func (f *FullNode) onBundleRequest(from wire.NodeID, req *core.BundleRequest) {
	if int(req.Producer) >= f.cfg.NC || req.From == 0 || req.To < req.From {
		return
	}
	const maxServe = 64
	to := req.To
	if to-req.From+1 > maxServe {
		to = req.From + maxServe - 1
	}
	bundles := f.mp.Range(req.Producer, req.From-1, to)
	if len(bundles) > 0 {
		f.ctx.Send(from, &core.BundleResponse{Bundles: bundles})
	}
}

// armDigest exchanges ledger digests over backup connections (§IV-F).
func (f *FullNode) armDigest() {
	f.digestTimer = f.ctx.After(f.cfg.DigestInterval, func() {
		d := &BlockDigest{Height: f.lastHeight, Tips: f.mp.Tips()}
		for _, p := range f.cfg.BackupPeers {
			f.ctx.Send(p, d)
		}
		f.armDigest()
	})
}

// onDigest pulls bundles we miss from a digest sender; when the digest
// also reveals we are behind on blocks (e.g. the relayer tree dropped a
// ZoneBlock, or we just restarted), request the missing block run too.
func (f *FullNode) onDigest(from wire.NodeID, m *BlockDigest) {
	tips := f.mp.Tips()
	for i, remote := range m.Tips {
		if i >= len(tips) {
			break
		}
		if remote > tips[i] {
			f.ctx.Send(from, &core.BundleRequest{
				Producer: wire.NodeID(i), From: tips[i] + 1, To: remote,
			})
		}
	}
	if m.Height > f.lastHeight {
		f.ctx.Send(from, &BlockRequest{Height: f.lastHeight})
	}
}

// sweepDataPlane bounds memory on long runs: finished partial-bundle
// entries whose bundles are confirmed (or pruned) leave the dedup map, and
// ancient block-hash entries age out once the chain moves past them.
func (f *FullNode) sweepDataPlane() {
	for h, p := range f.partials {
		if !p.done {
			continue
		}
		conf := f.mp.ConfirmedHeight(p.header.Producer)
		if p.header.Height <= conf {
			delete(f.partials, h)
		}
	}
	const keepBlocks = 128
	if f.lastHeight > keepBlocks {
		floor := f.lastHeight - keepBlocks
		for h, height := range f.seenBlocks {
			if height < floor {
				delete(f.seenBlocks, h)
			}
		}
	}
	// Speculative blocks that neither finalized nor were retracted (their
	// discard was lost, or the height completed via catch-up) age out as
	// waste, so a lossy stream can never grow the buffer without bound.
	if len(f.specBlocks) > 0 {
		now := f.ctx.Now()
		ttl := 8 * f.cfg.AliveInterval
		f.discardSpec(now, func(ent *specEntry) bool {
			return ent.blk.Height <= f.lastHeight || now.Sub(ent.at) > ttl
		})
	}
}
