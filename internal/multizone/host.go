package multizone

import (
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/exec"
	"predis/internal/node"
	"predis/internal/obs"
	"predis/internal/types"
	"predis/internal/wire"
)

// ConsensusHost wraps a consensus node with a Multi-Zone distributor:
// consensus traffic routes to the node, zone-plane traffic to the
// distributor, and the node's bundle/block hooks feed the distributor.
type ConsensusHost struct {
	Node *node.Node
	Dist *Distributor
}

var _ env.Handler = (*ConsensusHost)(nil)

// HostConfig assembles a Multi-Zone consensus node.
type HostConfig struct {
	// NC, F, Self, Signer, Engine: as in node.Config.
	NC, F  int
	Self   wire.NodeID
	Signer crypto.Signer
	Engine node.EngineKind
	// BundleSize / BundleInterval: Predis producer parameters.
	BundleSize     int
	BundleInterval time.Duration
	ViewTimeout    time.Duration
	// Stream enables streaming commit (see node.Config): the distributor
	// additionally pushes each proposed block to its subscribers the
	// moment consensus first handles it — before the ordering decision —
	// and retracts pushes whose proposal the engine evicted.
	Stream bool
	// Pipeline is the PBFT in-flight instance window (see pbft.Config);
	// meaningful with Stream.
	Pipeline int
	// Striper must match the full nodes'.
	Striper *Striper
	// MaxSubscribers caps relayer subscriptions at this consensus node
	// (0 = unlimited).
	MaxSubscribers int
	// ReplyToClients / OnCommit: measurement hooks as in node.Config.
	ReplyToClients bool
	OnCommit       func(height uint64, txs int)
	// SubscriberTTL expires relayer subscriptions that stopped
	// heartbeating (0 disables; 3× the full nodes' HeartbeatInterval is a
	// sensible value).
	SubscriberTTL time.Duration
	// Trace, when non-nil, records block/bundle lifecycle stages across
	// the node and the distributor. Nil disables tracing at zero cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives per-node counters from the wrapped
	// Predis component.
	Metrics *obs.Registry
	// Executor / ExecSerial / OnExecute: execution plane, as in
	// node.Config (each host owns its own exec.Machine).
	Executor   *exec.Machine
	ExecSerial bool
	OnExecute  func(r exec.Result)
}

// NewConsensusHost builds the host. Multi-Zone always runs Predis (the
// paper's deployment: Predis on BFT-SMaRt with Multi-Zone distribution).
func NewConsensusHost(cfg HostConfig) (*ConsensusHost, error) {
	dist := NewDistributor(cfg.Self, cfg.NC, cfg.Striper, cfg.MaxSubscribers)
	dist.SetSubscriberTTL(cfg.SubscriberTTL)
	dist.SetTrace(cfg.Trace)
	n, err := node.New(node.Config{
		Mode:           node.ModePredis,
		Engine:         cfg.Engine,
		NC:             cfg.NC,
		F:              cfg.F,
		Self:           cfg.Self,
		Signer:         cfg.Signer,
		BundleSize:     cfg.BundleSize,
		BundleInterval: cfg.BundleInterval,
		ViewTimeout:    cfg.ViewTimeout,
		Stream:         cfg.Stream,
		Pipeline:       cfg.Pipeline,
		ReplyToClients: cfg.ReplyToClients,
		StripeRoot:     dist.StripeRoot,
		OnBundleStored: dist.OnBundleStored,
		OnBlockCommit:  dist.OnBlockCommit,
		OnBlockPropose: dist.OnBlockPropose,
		OnBlockEvict:   dist.OnBlockEvict,
		Trace:          cfg.Trace,
		Metrics:        cfg.Metrics,
		Executor:       cfg.Executor,
		ExecSerial:     cfg.ExecSerial,
		OnExecute:      cfg.OnExecute,
		OnCommit: func(height uint64, txs []*types.Transaction) {
			if cfg.OnCommit != nil {
				cfg.OnCommit(height, len(txs))
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return &ConsensusHost{Node: n, Dist: dist}, nil
}

// Start implements env.Handler.
func (h *ConsensusHost) Start(ctx env.Context) {
	h.Dist.Start(ctx)
	h.Node.Start(ctx)
}

var _ env.Restartable = (*ConsensusHost)(nil)

// OnRestart implements env.Restartable: the consensus node re-arms its
// timers and catches up; the distributor is stateless between sends and
// keeps its subscriber set (relayers re-subscribe if they expired us).
func (h *ConsensusHost) OnRestart() { h.Node.OnRestart() }

// Receive implements env.Handler.
func (h *ConsensusHost) Receive(from wire.NodeID, m wire.Message) {
	if m.Type()&0xff00 == wire.TypeRangeZone {
		h.Dist.Receive(from, m)
		return
	}
	if req, ok := m.(*core.BundleRequest); ok {
		// Bundle pulls from full nodes are served by the Predis mempool.
		h.Node.Predis().Receive(from, req)
		return
	}
	h.Node.Receive(from, m)
}
