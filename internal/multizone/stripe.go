// Package multizone implements the paper's data distribution layer (§IV):
// the network is divided into zones, each zone keeps n_c relayers alive,
// consensus nodes erasure-code every bundle into n_c stripes and send only
// their own stripe to subscribers, relayers exchange stripes so each one
// receives the full set while consensus bandwidth stays constant, and
// ordinary nodes subscribe to relayers. Predis blocks (tiny) follow the
// same subscription tree, so a full node can rebuild every block from its
// local bundle store the moment the block header arrives.
package multizone

import (
	"errors"
	"fmt"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/erasure"
	"predis/internal/merkle"
	"predis/internal/types"
	"predis/internal/wire"
)

// Striper turns bundles into verifiable stripes and back. A bundle body is
// erasure-coded into data = n_c−f and parity = f shards (any n_c−f of the
// n_c reconstruct), and the bundle header's StripeRoot commits to all
// shards so each stripe is independently verifiable with a Merkle proof
// (§IV-D). A Striper is immutable after SetPool and safe for concurrent
// use.
type Striper struct {
	coder *erasure.Coder
	nc, f int
	// pool, when active, fork-joins the per-shard leaf hashing inside
	// Encode and the Merkle-root recompute inside Reassemble. Set once at
	// component start, before any traffic; nil keeps every path inline.
	pool *compute.Pool
}

// SetPool installs the compute pool used for fork-join kernels. Call it
// before the striper sees traffic (component Start); the results are
// value-identical for any pool, including nil.
func (s *Striper) SetPool(p *compute.Pool) { s.pool = p }

// NewStriper builds a striper for n_c consensus nodes tolerating f faults.
func NewStriper(nc, f int) (*Striper, error) {
	if nc <= 0 || f < 0 || nc-f <= 0 {
		return nil, fmt.Errorf("multizone: bad striper params nc=%d f=%d", nc, f)
	}
	coder, err := erasure.New(nc-f, f)
	if err != nil {
		return nil, err
	}
	return &Striper{coder: coder, nc: nc, f: f}, nil
}

// NC returns the stripe count (one per consensus node).
func (s *Striper) NC() int { return s.nc }

// MinStripes returns how many stripes reconstruct a bundle (n_c − f).
func (s *Striper) MinStripes() int { return s.nc - s.f }

// encodeBody serializes a bundle body exactly as the wire codec does, so
// reassembled bundles decode with the standard path.
func encodeBody(txs []*types.Transaction) []byte {
	e := wire.NewEncoder(types.SizeTxs(txs))
	types.EncodeTxs(e, txs)
	return e.Bytes()
}

// StripeSet is the encoded form of one bundle: the shards plus the Merkle
// tree over them.
type StripeSet struct {
	Shards     [][]byte
	PayloadLen int
	Root       crypto.Hash
	tree       *merkle.Tree
}

// Encode erasure-codes a bundle body into n_c shards and builds the stripe
// Merkle tree. Call it before signing the header so StripeRoot can be
// embedded (core.Options.StripeRoot does this).
func (s *Striper) Encode(txs []*types.Transaction) (*StripeSet, error) {
	body := encodeBody(txs)
	shards := s.coder.Split(body)
	tree, err := s.encodeTree(shards)
	if err != nil {
		return nil, err
	}
	return &StripeSet{
		Shards:     shards,
		PayloadLen: len(body),
		Root:       tree.Root(),
		tree:       tree,
	}, nil
}

// encodeTree fills the parity shards and builds the stripe Merkle tree.
// With an active pool the parity encode and the data-shard leaf hashing
// fork-join (they touch disjoint shards); the tree it returns is
// byte-identical to the serial merkle.NewTree(shards) result.
func (s *Striper) encodeTree(shards [][]byte) (*merkle.Tree, error) {
	data := s.coder.DataShards()
	if !s.pool.Active() || data < 2 {
		if err := s.coder.Encode(shards); err != nil {
			return nil, err
		}
		return merkle.NewTree(shards), nil
	}
	leaves := make([]crypto.Hash, len(shards))
	var encErr error
	// Task 0 computes every parity shard (writes shards[data:]); tasks
	// 1..data hash the data shards (read shards[:data], write disjoint
	// leaf slots). No task touches another's memory.
	s.pool.Map(1+data, func(i int) {
		if i == 0 {
			encErr = s.coder.Encode(shards)
			return
		}
		leaves[i-1] = merkle.HashLeaf(shards[i-1])
	})
	if encErr != nil {
		return nil, encErr
	}
	// Parity leaves need the encoded parity; hash them after the join
	// (f is small — 1 at the paper's scale).
	for i := data; i < len(shards); i++ {
		leaves[i] = merkle.HashLeaf(shards[i])
	}
	return merkle.NewTreeFromHashes(leaves), nil
}

// Stripe extracts stripe i as a wire message for the given bundle header.
func (set *StripeSet) Stripe(header core.BundleHeader, i int) (*StripeMsg, error) {
	if i < 0 || i >= len(set.Shards) {
		return nil, fmt.Errorf("multizone: stripe index %d out of range", i)
	}
	proof, err := set.tree.Proof(i)
	if err != nil {
		return nil, err
	}
	return &StripeMsg{
		Header:     header,
		Index:      uint8(i),
		PayloadLen: uint32(set.PayloadLen),
		Shard:      set.Shards[i],
		Proof:      proof,
	}, nil
}

// Errors from stripe verification and reassembly.
var (
	ErrStripeProof  = errors.New("multizone: stripe Merkle proof invalid")
	ErrStripeCount  = errors.New("multizone: not enough stripes to reassemble")
	ErrStripeBundle = errors.New("multizone: reassembled bundle does not match header")
)

// VerifyStripe checks a stripe against its header's StripeRoot. Success
// is memoized on the message: the simulator delivers one *StripeMsg to
// every recipient, so the Merkle proof is checked once per stripe rather
// than once per full node. When the message carries a speculative future
// (Precompute ran at schedule time), the proof result is joined here
// instead of recomputed — the check itself and its outcome are identical.
func (s *Striper) VerifyStripe(m *StripeMsg) error {
	if m.verified {
		return nil
	}
	if int(m.Index) >= s.nc {
		return fmt.Errorf("%w: index %d of %d", ErrStripeProof, m.Index, s.nc)
	}
	ok, joined := m.joinSpec(s.nc)
	if !joined {
		ok = merkle.Verify(m.Header.StripeRoot, m.Shard, int(m.Index), s.nc, m.Proof)
	}
	if !ok {
		return ErrStripeProof
	}
	m.verified = true
	return nil
}

// Reassemble reconstructs a bundle from any n_c−f verified stripes of the
// same header. stripes is indexed by stripe index; nil entries are
// missing.
func (s *Striper) Reassemble(header core.BundleHeader, stripes []*StripeMsg) (*core.Bundle, error) {
	shards := make([][]byte, s.nc)
	have := 0
	payloadLen := -1
	for i, st := range stripes {
		if st == nil {
			continue
		}
		shards[i] = st.Shard
		have++
		if payloadLen < 0 {
			payloadLen = int(st.PayloadLen)
		}
	}
	if have < s.MinStripes() || payloadLen < 0 {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrStripeCount, have, s.MinStripes())
	}
	// With enough stripes in hand, a bundle another node already
	// reconstructed from a set containing one of them is exactly what
	// decoding would produce: every valid n_c−f subset yields the same
	// body (Reed–Solomon), and the memo was checked against the header's
	// commitments before caching.
	headerHash := header.Hash()
	for _, st := range stripes {
		if st != nil && st.assembled != nil && st.assembled.Header.Hash() == headerHash {
			return st.assembled, nil
		}
	}
	// Only the data shards are needed to Join the body back together;
	// skipping the parity recompute saves f full matrix rows of GF math
	// per reassembled bundle.
	if err := s.coder.ReconstructData(shards); err != nil {
		return nil, err
	}
	body, err := s.coder.Join(shards, payloadLen)
	if err != nil {
		return nil, err
	}
	txs, err := types.DecodeTxs(wire.NewDecoder(body))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStripeBundle, err)
	}
	b := &core.Bundle{Header: header, Txs: txs}
	if err := b.VerifyBodyPooled(s.pool); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStripeBundle, err)
	}
	for _, st := range stripes {
		if st != nil {
			st.assembled = b
		}
	}
	return b, nil
}

// StripeRootHook returns a function suitable for core.Options.StripeRoot:
// it encodes the body and returns the stripe Merkle root so the producer
// can commit to it before signing. The encoding is recomputed by the
// distributor at dissemination time; for the bundle sizes in the paper
// (25 KB) this costs microseconds (§V-B).
func (s *Striper) StripeRootHook() func(txs []*types.Transaction) crypto.Hash {
	return func(txs []*types.Transaction) crypto.Hash {
		set, err := s.Encode(txs)
		if err != nil {
			return crypto.ZeroHash
		}
		return set.Root
	}
}
