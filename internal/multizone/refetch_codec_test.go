package multizone

import (
	"testing"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/wire"
)

// TestRefetchQuarantineCodecFidelity pins field-level round-trip
// fidelity for the refetch/quarantine message set. The zone codec table
// test (TestZoneMessageCodecs) asserts these decode successfully and
// that WireSize is exact; this test additionally asserts the decoded
// values equal what was encoded, so a decoder reading fields in the
// wrong order (which still consumes the right number of bytes when the
// widths happen to line up) cannot slip through.
func TestRefetchQuarantineCodecFidelity(t *testing.T) {
	RegisterMessages()
	core.RegisterMessages()
	suite := crypto.NewSimSuite(4, 93)
	blk := &core.PredisBlock{
		Height: 6, Leader: 2,
		Cuts: []core.Cut{{Height: 11, Head: crypto.HashBytes([]byte("cut"))}, {}, {}, {}},
	}
	blk.Sig = suite.Signer(2).Sign(blk.Hash())

	req := &BlockRequest{Height: 41}
	if got, err := wire.Roundtrip(req); err != nil || *got.(*BlockRequest) != *req {
		t.Fatalf("BlockRequest fidelity: got %+v err %v", got, err)
	}

	resp := &BlockResponse{Head: 44, Anchor: blk, Blocks: []*core.PredisBlock{blk, blk}}
	got, err := wire.Roundtrip(resp)
	if err != nil {
		t.Fatalf("BlockResponse roundtrip: %v", err)
	}
	gr := got.(*BlockResponse)
	if gr.Head != 44 || gr.Anchor == nil || gr.Anchor.Hash() != blk.Hash() {
		t.Fatalf("BlockResponse head/anchor changed: %+v", gr)
	}
	if len(gr.Blocks) != 2 || gr.Blocks[0].Hash() != blk.Hash() || gr.Blocks[1].Hash() != blk.Hash() {
		t.Fatalf("BlockResponse blocks changed: %+v", gr.Blocks)
	}
	if !suite.Signer(0).Verify(2, gr.Blocks[0].Hash(), gr.Blocks[0].Sig) {
		t.Fatal("BlockResponse block signature lost")
	}

	dig := &BlockDigest{Height: 17, Tips: []uint64{3, 1, 4, 1}}
	got2, err := wire.Roundtrip(dig)
	if err != nil {
		t.Fatalf("BlockDigest roundtrip: %v", err)
	}
	gd := got2.(*BlockDigest)
	if gd.Height != 17 || len(gd.Tips) != 4 {
		t.Fatalf("BlockDigest changed: %+v", gd)
	}
	for i, v := range []uint64{3, 1, 4, 1} {
		if gd.Tips[i] != v {
			t.Fatalf("BlockDigest tip %d: got %d want %d", i, gd.Tips[i], v)
		}
	}

	gq := &GetRelayers{Zone: 5}
	if got, err := wire.Roundtrip(gq); err != nil || *got.(*GetRelayers) != *gq {
		t.Fatalf("GetRelayers fidelity: got %+v err %v", got, err)
	}

	info := &RelayersInfo{Zone: 5, Relayers: []RelayerEntry{
		{Node: 7, JoinSeq: 3, Stripes: []uint8{0, 2}},
		{Node: 9, JoinSeq: 8, Stripes: []uint8{1}},
	}}
	got3, err := wire.Roundtrip(info)
	if err != nil {
		t.Fatalf("RelayersInfo roundtrip: %v", err)
	}
	gi := got3.(*RelayersInfo)
	if gi.Zone != 5 || len(gi.Relayers) != 2 {
		t.Fatalf("RelayersInfo changed: %+v", gi)
	}
	for i, want := range info.Relayers {
		g := gi.Relayers[i]
		if g.Node != want.Node || g.JoinSeq != want.JoinSeq || len(g.Stripes) != len(want.Stripes) {
			t.Fatalf("RelayerEntry %d changed: got %+v want %+v", i, g, want)
		}
		for j := range want.Stripes {
			if g.Stripes[j] != want.Stripes[j] {
				t.Fatalf("RelayerEntry %d stripe %d: got %d want %d", i, j, g.Stripes[j], want.Stripes[j])
			}
		}
	}
}
