package multizone

import (
	"sort"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/wire"
)

// Byzantine hardening for the zone data plane (the paper's §IV-B threat
// model). Full nodes count cryptographic offenses per peer — stripes
// whose Merkle proof or bundle-header signature fails verification —
// re-request the damaged bundle from alternate holders with the same
// capped backoff as crash-recovery pulls, and quarantine repeat offenders
// behind a TTL blacklist that feeds every peer-selection path: the
// Receive gate, Algorithm 1's candidate order, relayer announcements,
// bootstrap tables, and the memoized subscriber fan-out. Withholding is
// handled separately: a sender that stays alive but never contributes its
// stripe fails no verification, so it is starved out by a harmless
// resubscribe (opt-in, see FullNodeConfig.StarveRewireAfter) and never
// quarantined — benign crash/loss runs keep rejected, refetches, and
// quarantines at exactly zero.

// ByzStats returns the Byzantine-hardening counters: stripes rejected on
// verification failure, bundle refetch requests sent to alternate
// holders, peers quarantined, and stripe subscriptions rewired away from
// starving senders. All four are zero on benign runs (rewires requires
// the opt-in StarveRewireAfter; the rest require a verification failure).
func (f *FullNode) ByzStats() (rejected, refetches, quarantines, rewires uint64) {
	return f.rejected, f.refetches, f.quarantines, f.rewires
}

// isQuarantined reports whether a peer is currently blacklisted; entries
// past their TTL are removed lazily on the first check, which re-admits
// the peer to every selection path at once.
func (f *FullNode) isQuarantined(id wire.NodeID) bool {
	exp, ok := f.quarantined[id]
	if !ok {
		return false
	}
	if f.ctx.Now().Before(exp) {
		return true
	}
	delete(f.quarantined, id)
	return false
}

// recordOffense charges one cryptographic offense against a peer and
// quarantines it once the configured threshold is reached. Only forged
// proofs and bad signatures are ever charged — never gaps, timeouts, or
// losses — so an honest-but-unlucky peer cannot cross the threshold.
func (f *FullNode) recordOffense(from wire.NodeID) {
	if f.cfg.QuarantineAfter < 0 {
		return
	}
	f.offenses[from]++
	if f.offenses[from] >= f.cfg.QuarantineAfter {
		f.quarantine(from)
	}
}

// quarantine blacklists a peer for QuarantineTTL and severs every role it
// plays in this node's topology: stripe sender, subscriber, pending
// subscription target, and relayer-table entry (tombstoned, so a
// post-expiry honest announcement still versions monotonically).
// Algorithm 1 then re-wires the orphaned stripes through alternates.
func (f *FullNode) quarantine(id wire.NodeID) {
	f.quarantines++
	delete(f.offenses, id)
	f.quarantined[id] = f.ctx.Now().Add(f.cfg.QuarantineTTL)
	for s, sd := range f.stripeSender {
		if sd == id {
			delete(f.stripeSender, s)
			delete(f.consensusDir, s)
		}
	}
	for s, to := range f.pendingSub {
		if to == id {
			delete(f.pendingSub, s)
		}
	}
	for s, subs := range f.subscribers {
		if subs[id] {
			delete(subs, id)
			f.subCount--
			f.subsChanged()
		}
		if len(subs) == 0 {
			delete(f.subscribers, s)
		}
	}
	if info := f.zoneRelayers[id]; info != nil {
		info.stripes = nil // tombstone: no longer a candidate, version preserved
	}
	f.ctx.Logf("multizone: node %d quarantined %d for %v",
		f.cfg.Self, id, f.cfg.QuarantineTTL)
	f.runSubscription()
}

// headerAuthentic checks a bundle header's producer signature (used
// before trusting the coordinates of a stripe that failed verification).
func (f *FullNode) headerAuthentic(h *core.BundleHeader) bool {
	return int(h.Producer) < f.cfg.NC &&
		f.cfg.Signer.Verify(int(h.Producer), h.Hash(), h.Sig)
}

// maxRefetchAttempts bounds one damaged bundle's re-request loop; past it
// the periodic digest/catch-up machinery owns recovery.
const maxRefetchAttempts = 5

// starveGraceIntervals is the starvation detector's silence threshold in
// units of AliveInterval: a subscribed sender is only chargeable as
// starving once it has delivered no stripe-s traffic for this long
// (see noteStarvation).
const starveGraceIntervals = 2

// scheduleRefetch re-requests a bundle whose stripe failed verification
// from alternate holders — never the offender — rotating targets across
// attempts and pacing them with the crash-recovery backoff. At most one
// loop runs per bundle; it stops as soon as the bundle is locally held.
func (f *FullNode) scheduleRefetch(hdr core.BundleHeader, offender wire.NodeID) {
	h := hdr.Hash()
	if f.refetching[h] {
		return
	}
	f.refetching[h] = true
	f.fireRefetch(hdr, h, offender, 0)
}

func (f *FullNode) fireRefetch(hdr core.BundleHeader, h crypto.Hash, offender wire.NodeID, attempt int) {
	if f.mp.Bundle(hdr.Producer, hdr.Height) != nil || attempt >= maxRefetchAttempts {
		delete(f.refetching, h)
		return
	}
	targets := f.refetchTargets(hdr.Producer, offender)
	if len(targets) == 0 {
		delete(f.refetching, h)
		return
	}
	f.ctx.Send(targets[attempt%len(targets)], &core.BundleRequest{
		Producer: hdr.Producer, From: hdr.Height, To: hdr.Height,
	})
	f.refetches++
	delay := f.cfg.Retry.Delay(attempt, f.ctx.Rand())
	f.ctx.After(delay, func() {
		f.fireRefetch(hdr, h, offender, attempt+1)
	})
}

// refetchTargets lists candidate holders for a damaged bundle in
// preference order: other zone relayers serving the producer's stripe
// (earliest join first), then the crash-recovery pull targets — always
// excluding the offender, ourselves, and anyone quarantined.
func (f *FullNode) refetchTargets(producer, offender wire.NodeID) []wire.NodeID {
	out := make([]wire.NodeID, 0, 4)
	seen := map[wire.NodeID]bool{offender: true, f.cfg.Self: true}
	add := func(id wire.NodeID) {
		if !seen[id] && !f.isQuarantined(id) {
			seen[id] = true
			out = append(out, id)
		}
	}
	s := uint8(producer) % uint8(f.cfg.NC)
	type cand struct {
		id      wire.NodeID
		joinSeq uint64
	}
	cands := make([]cand, 0, len(f.zoneRelayers))
	for id, info := range f.zoneRelayers {
		if info.active() && containsStripe(info.stripes, s) {
			cands = append(cands, cand{id, info.joinSeq})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].joinSeq < cands[j].joinSeq })
	for _, c := range cands {
		add(c.id)
	}
	for _, id := range f.pullTargets(producer) {
		add(id)
	}
	return out
}

// noteStarvation runs when a bundle reassembles: a stripe missing at
// assembly time is charged one starvation point only when its subscribed
// sender has also gone silent for starveGraceIntervals heartbeats — a
// bundle assembles as soon as n_c−f stripes arrive, so the slowest
// sender's stripe is routinely absent at assembly while still in flight,
// and charging mere lateness rewires healthy subscriptions in a loop. At
// StarveRewireAfter consecutive starved-and-silent assemblies the stripe
// is rewired to an alternate source. Withholding fails no verification,
// so this path never quarantines; it is opt-in (zero disables it) because
// a single receiver cannot distinguish withholding from path loss.
func (f *FullNode) noteStarvation(p *partialBundle) {
	if f.cfg.StarveRewireAfter <= 0 {
		return
	}
	grace := starveGraceIntervals * f.cfg.AliveInterval
	for s := 0; s < f.cfg.NC; s++ {
		si := uint8(s)
		if p.stripes[s] != nil {
			delete(f.starve, si)
			continue
		}
		if _, ok := f.stripeSender[si]; !ok {
			continue // no subscription to blame; Algorithm 1 owns repair
		}
		if f.ctx.Now().Sub(f.stripeSeen[si]) < grace {
			delete(f.starve, si) // sender is live, just not among the fastest n_c−f
			continue
		}
		f.starve[si]++
		if f.starve[si] >= f.cfg.StarveRewireAfter {
			delete(f.starve, si)
			f.rewireStripe(si)
		}
	}
}

// rewireStripe moves one starved stripe to an alternate source: the
// earliest-joined other relayer serving it, else straight to the
// consensus node that produces it.
func (f *FullNode) rewireStripe(s uint8) {
	cur := f.stripeSender[s]
	best := wire.NoNode
	var bestSeq uint64
	for id, info := range f.zoneRelayers {
		if id == cur || id == f.cfg.Self || !info.active() || f.isQuarantined(id) {
			continue
		}
		if containsStripe(info.stripes, s) && (best == wire.NoNode || info.joinSeq < bestSeq) {
			best, bestSeq = id, info.joinSeq
		}
	}
	if best == wire.NoNode {
		if cur == wire.NodeID(s) || f.isQuarantined(wire.NodeID(s)) {
			return // already at the source, or the source itself is out
		}
		best = wire.NodeID(s)
	}
	f.rewires++
	f.ctx.Logf("multizone: node %d rewiring starved stripe %d from %d to %d",
		f.cfg.Self, s, cur, best)
	f.resubscribe(s, best)
}
