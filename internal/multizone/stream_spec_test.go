package multizone

import (
	"testing"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/node"
	"predis/internal/obs"
	"predis/internal/simnet"
	"predis/internal/wire"
)

// emptyStreamBlock builds a valid signed drain block (cuts == prev) for
// the given leader: full nodes accept it with zero bundles, which lets
// spec-buffer tests drive the block lifecycle without a stripe plane.
func emptyStreamBlock(t *testing.T, suite *crypto.SignerSuite, nc, f int,
	leader wire.NodeID, height uint64, parent crypto.Hash) *core.PredisBlock {
	t.Helper()
	mp, err := core.NewMempool(core.Params{
		NC: nc, F: f, BundleSize: 1, Signer: suite.Signer(int(leader)),
	})
	if err != nil {
		t.Fatal(err)
	}
	blk, ok := mp.BuildPredisBlockStream(height, parent, core.ZeroCuts(nc), leader, true)
	if !ok {
		t.Fatal("drain block not built")
	}
	return blk
}

// TestSpecPushDiscardRedistributeExactlyOnce pins the distributor's
// speculative-push state machine: a proposal is pushed once no matter how
// often consensus revisits it, an eviction retracts it exactly once, and
// a re-proposal after the retraction is re-distributed exactly once.
func TestSpecPushDiscardRedistributeExactlyOnce(t *testing.T) {
	node.RegisterAllMessages()
	RegisterMessages()
	striper, _ := NewStriper(4, 1)
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond)})
	d := NewDistributor(2, 4, striper, 4)

	counts := make(map[wire.NodeID]map[wire.Type]int)
	rec := func(self wire.NodeID) *recHandler {
		counts[self] = make(map[wire.Type]int)
		return &recHandler{onRecv: func(from wire.NodeID, m wire.Message) {
			counts[self][m.Type()]++
		}}
	}
	distHost := &distHandler{d: d}
	net.AddNode(2, distHost)
	net.AddNode(50, rec(50))
	net.AddNode(51, rec(51))
	net.Start()
	distHost.inject(50, &Subscribe{Stripes: []uint8{2}})
	distHost.inject(51, &Subscribe{Stripes: []uint8{2}})

	suite := crypto.NewSimSuite(4, 90)
	blk := emptyStreamBlock(t, suite, 4, 1, 0, 1, crypto.ZeroHash)

	d.OnBlockPropose(blk)
	d.OnBlockPropose(blk) // replica re-validation: deduped
	d.OnBlockEvict(blk)
	d.OnBlockEvict(blk)   // double eviction: deduped
	d.OnBlockPropose(blk) // re-proposal after view change: pushed again
	d.OnBlockPropose(blk) // and deduped again
	d.OnBlockCommit(blk)
	net.Run(time.Second)

	for _, id := range []wire.NodeID{50, 51} {
		c := counts[id]
		if c[TypeSpec] != 2 {
			t.Fatalf("node %d got %d ZoneSpec pushes, want 2 (once + once after discard)", id, c[TypeSpec])
		}
		if c[TypeSpecDiscard] != 1 {
			t.Fatalf("node %d got %d discards, want 1", id, c[TypeSpecDiscard])
		}
		if c[TypeZoneBlock] != 1 {
			t.Fatalf("node %d got %d ordered blocks, want 1", id, c[TypeZoneBlock])
		}
	}
	specs, discards := d.SpecStats()
	if specs != 4 || discards != 2 {
		t.Fatalf("SpecStats = (%d, %d), want (4, 2)", specs, discards)
	}

	// Commit pruned the dedupe entry; a late proposal observation for the
	// settled block must not fault (full nodes dedupe via seenBlocks).
	d.OnBlockPropose(blk)
}

// TestFullNodeSpecBufferLifecycle drives a full node's speculative buffer
// through push → discard → re-push → finalize, plus a losing fork swept
// at settlement, and checks the hit/waste accounting and tracer spans.
func TestFullNodeSpecBufferLifecycle(t *testing.T) {
	node.RegisterAllMessages()
	RegisterMessages()
	striper, _ := NewStriper(4, 1)
	suite := crypto.NewSimSuite(4, 91)
	tr := obs.NewTracer(simnet.Epoch)
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond)})
	fn, err := NewFullNode(FullNodeConfig{
		Self: 200, NC: 4, F: 1,
		Striper: striper,
		Signer:  suite.Signer(0),
		Trace:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.AddNode(200, fn)
	net.Start()

	blkA := emptyStreamBlock(t, suite, 4, 1, 0, 1, crypto.ZeroHash)

	fn.Receive(0, &ZoneSpec{Block: blkA})
	if len(fn.specBlocks) != 1 {
		t.Fatalf("buffer = %d entries, want 1", len(fn.specBlocks))
	}
	fn.Receive(0, &ZoneSpec{Block: blkA}) // duplicate push
	if len(fn.specBlocks) != 1 {
		t.Fatal("duplicate spec grew the buffer")
	}
	bad := *blkA
	bad.Sig = suite.Signer(1).Sign(bad.Hash()) // wrong signer for the leader
	fn.Receive(0, &ZoneSpec{Block: &bad})
	if len(fn.specBlocks) != 1 {
		t.Fatal("forged spec entered the buffer")
	}

	fn.Receive(0, &ZoneSpecDiscard{Height: 1, Hash: blkA.Hash()})
	if hits, waste := fn.SpecStats(); hits != 0 || waste != 1 || len(fn.specBlocks) != 0 {
		t.Fatalf("after discard: hits=%d waste=%d buffered=%d", hits, waste, len(fn.specBlocks))
	}
	fn.Receive(0, &ZoneSpecDiscard{Height: 1, Hash: blkA.Hash()}) // repeat: no-op
	if _, waste := fn.SpecStats(); waste != 1 {
		t.Fatal("repeated discard double-counted")
	}

	// Exactly-once re-distribution: the re-pushed proposal is accepted.
	fn.Receive(0, &ZoneSpec{Block: blkA})
	if len(fn.specBlocks) != 1 {
		t.Fatal("re-pushed spec after discard not buffered")
	}

	// The ordered block finalizes the buffered speculation.
	fn.Receive(0, &ZoneBlock{Block: blkA})
	if fn.LastHeight() != 1 {
		t.Fatalf("block did not complete: head %d", fn.LastHeight())
	}
	if hits, waste := fn.SpecStats(); hits != 1 || waste != 1 {
		t.Fatalf("after finalize: hits=%d waste=%d", hits, waste)
	}

	// A spec block for an already-completed height is ignored.
	fn.Receive(0, &ZoneSpec{Block: blkA})
	if len(fn.specBlocks) != 0 {
		t.Fatal("stale spec buffered")
	}

	// A losing fork at the next height is swept as waste when a competing
	// block commits.
	fork := emptyStreamBlock(t, suite, 4, 1, 3, 2, blkA.Hash())
	winner := emptyStreamBlock(t, suite, 4, 1, 2, 2, blkA.Hash())
	fn.Receive(0, &ZoneSpec{Block: fork})
	fn.Receive(0, &ZoneBlock{Block: winner})
	if hits, waste := fn.SpecStats(); hits != 1 || waste != 2 {
		t.Fatalf("after fork settle: hits=%d waste=%d", hits, waste)
	}
	if n := tr.DiscardedCount(obs.StageSpecDistributed); n != 2 {
		t.Fatalf("tracer recorded %d discarded spec spans, want 2", n)
	}
}

// TestViewChangeMidStreamDiscards runs a streaming Multi-Zone cluster,
// crashes the PBFT leader mid-stream, and checks that full nodes both
// discarded retracted speculative blocks (waste observed network-wide)
// and kept finalizing speculation after the view change — while every
// node still completes a gap-free chain.
func TestViewChangeMidStreamDiscards(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 6,
		rate: 300, duration: 8 * time.Second,
		stream: true,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(3 * time.Second)
	zc.net.Crash(0) // PBFT view-0 leader dies mid-stream
	zc.net.Run(cfg.duration - 3*time.Second)

	var hits, waste uint64
	for _, fn := range zc.fulls {
		h, w := fn.SpecStats()
		hits += h
		waste += w
		if _, _, blocks := fn.Stats(); blocks == 0 {
			t.Fatalf("full node %d completed no blocks", fn.cfg.Self)
		}
	}
	if hits == 0 {
		t.Fatal("no full node finalized a speculative block")
	}
	if waste == 0 {
		t.Fatal("leader crash produced no speculative discards")
	}
	t.Logf("spec hits=%d waste=%d", hits, waste)

	// Chains stay gap-free through the view change.
	for id, heights := range zc.completed {
		for i, h := range heights {
			if h != uint64(i+1) {
				t.Fatalf("node %d completed heights %v (gap at %d)", id, heights[:i+1], i)
			}
		}
	}
}
