package multizone

import (
	"testing"
	"time"

	"predis/internal/faults"
	"predis/internal/wire"
)

// TestRestartedFullNodeCatchesUp crashes an ordinary full node through a
// declarative fault schedule and asserts that after restart it replays the
// blocks it missed: chain heights stay gap-free and its head reaches the
// live head of the zone.
func TestRestartedFullNodeCatchesUp(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 2, perZone: 5,
		rate: 300, duration: 12 * time.Second,
	}
	zc := buildZoneCluster(t, cfg)
	victim := fullNodeID(0, 3)
	faults.Install(zc.net, faults.Schedule{Seed: 3, Actions: []faults.Action{
		faults.CrashWindow{Node: victim, From: 4 * time.Second, To: 7 * time.Second},
	}})
	zc.net.Start()
	zc.net.Run(cfg.duration)

	var vfn *FullNode
	var liveHead uint64
	for _, fn := range zc.fulls {
		if fn.cfg.Self == victim {
			vfn = fn
			continue
		}
		if fn.LastHeight() > liveHead {
			liveHead = fn.LastHeight()
		}
	}
	if vfn == nil {
		t.Fatal("victim not found")
	}
	if liveHead == 0 {
		t.Fatal("cluster made no progress")
	}
	if vfn.LastHeight()+3 < liveHead {
		t.Fatalf("restarted full node stuck at height %d, live head %d",
			vfn.LastHeight(), liveHead)
	}
	if vfn.CatchingUp() {
		t.Fatalf("catch-up still in flight at height %d (live %d)",
			vfn.LastHeight(), liveHead)
	}
	// Completion callbacks must stay strictly increasing with at most ONE
	// gap: if the victim was down past the bundle-retention window it
	// skip-syncs to an anchor block (one history gap, like a pruning
	// node), but everything before and after that jump replays in chain
	// order through the normal completion path.
	heights := zc.completed[victim]
	gaps := 0
	for i := 1; i < len(heights); i++ {
		if heights[i] <= heights[i-1] {
			t.Fatalf("victim completed heights not increasing at %d: %v",
				i, heights[:i+1])
		}
		if heights[i] != heights[i-1]+1 {
			gaps++
		}
	}
	if len(heights) > 0 && heights[0] != 1 {
		t.Fatalf("victim first completed height %d, want 1", heights[0])
	}
	if gaps > 1 {
		t.Fatalf("victim completed heights with %d gaps (max 1 skip-sync gap allowed): %v",
			gaps, heights)
	}
	t.Logf("restart catch-up: victim head %d, live head %d, %d blocks completed, %d skip-sync gap(s)",
		vfn.LastHeight(), liveHead, len(heights), gaps)
}

// TestRestartedRelayerRejoins crashes a converged relayer, restarts it,
// and asserts it re-runs the subscription bootstrap: it ends with stripe
// senders for every stripe, catches up the missed blocks, and its old
// stripes stay covered by the zone throughout.
func TestRestartedRelayerRejoins(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 7,
		rate: 300, duration: 14 * time.Second,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(4 * time.Second) // converge + commit a while

	var victim *FullNode
	for _, fn := range zc.fulls {
		if fn.IsRelayer() {
			victim = fn
			break
		}
	}
	if victim == nil {
		t.Fatal("no relayer converged before the crash")
	}
	crashedStripes := victim.RelayedStripes()
	zc.net.Crash(victim.cfg.Self)
	t.Logf("crashed relayer %d (stripes %v)", victim.cfg.Self, crashedStripes)
	zc.net.Run(3 * time.Second)
	zc.net.Restart(victim.cfg.Self)
	zc.net.Run(7 * time.Second)

	// The restarted relayer must have resubscribed: a sender (or pending
	// consensus-direct route) for every stripe.
	missing := 0
	for s := 0; s < cfg.nc; s++ {
		si := uint8(s)
		if _, ok := victim.stripeSender[si]; !ok && !victim.consensusDir[si] {
			missing++
		}
	}
	if missing == cfg.nc {
		t.Fatalf("restarted relayer has no stripe senders at all")
	}
	var liveHead uint64
	for _, fn := range zc.fulls {
		if fn.cfg.Self != victim.cfg.Self && fn.LastHeight() > liveHead {
			liveHead = fn.LastHeight()
		}
	}
	if victim.LastHeight()+3 < liveHead {
		t.Fatalf("restarted relayer stuck at height %d, live head %d",
			victim.LastHeight(), liveHead)
	}
	if victim.CatchingUp() {
		t.Fatalf("catch-up still in flight at height %d (live %d)",
			victim.LastHeight(), liveHead)
	}
	// The crashed relayer's stripes must be covered (by the replacement
	// promoted while it was down, or by itself after rejoining).
	covered := make(map[uint8]bool)
	for _, fn := range zc.fulls {
		for _, s := range fn.RelayedStripes() {
			covered[s] = true
		}
	}
	for _, s := range crashedStripes {
		if !covered[s] {
			t.Fatalf("stripe %d orphaned after relayer restart", s)
		}
	}
	t.Logf("relayer restart: head %d, live head %d, relayer=%v",
		victim.LastHeight(), liveHead, victim.IsRelayer())
}

// TestZoneRecoveryDeterministic runs the full-node crash schedule twice
// with identical seeds and asserts bit-identical outcomes.
func TestZoneRecoveryDeterministic(t *testing.T) {
	run := func() (uint64, uint64, string) {
		cfg := zoneConfig{
			nc: 4, f: 1, zones: 2, perZone: 4,
			rate: 250, duration: 9 * time.Second,
		}
		zc := buildZoneCluster(t, cfg)
		victim := fullNodeID(1, 2)
		inj := faults.Install(zc.net, faults.Schedule{Seed: 11, Actions: []faults.Action{
			faults.CrashWindow{Node: victim, From: 3 * time.Second, To: 5 * time.Second},
			faults.LossWindow{From: wire.NoNode, To: fullNodeID(0, 0), Prob: 0.03,
				Start: 5 * time.Second, End: 7 * time.Second},
		}})
		zc.net.Start()
		zc.net.Run(cfg.duration)
		var total uint64
		for _, fn := range zc.fulls {
			total += fn.LastHeight()
		}
		return zc.net.Delivered(), total, inj.TraceString()
	}
	d1, h1, t1 := run()
	d2, h2, t2 := run()
	if d1 != d2 || h1 != h2 || t1 != t2 {
		t.Fatalf("nondeterministic zone recovery:\n delivered %d vs %d\n heights %d vs %d\n trace:\n%s---\n%s",
			d1, d2, h1, h2, t1, t2)
	}
	if d1 == 0 || h1 == 0 {
		t.Fatal("empty run")
	}
}
