package multizone

import (
	"sort"
	"time"

	"predis/internal/core"
	"predis/internal/env"
	"predis/internal/wire"
)

// This file implements full-node crash recovery (ISSUE 1 tentpole 2, zone
// side). A crashed full node loses every timer chain (alive, heartbeat,
// digest, pull retries) and every block and stripe sent while it was down;
// its upstream senders expire it from their subscriber sets and its own
// relayer view goes stale. On restart the node therefore (1) re-arms its
// periodic timers, (2) discards its subscription/relayer control state and
// re-runs the §IV-C bootstrap (GetRelayers + Algorithm 1), and (3) pulls
// the committed blocks it missed from zone/backup peers, replaying them
// through the normal block-completion path — which in turn issues ordinary
// bundle pulls for any bodies it lacks.
//
// Catch-up blocks carry the consensus leader's signature and must chain
// contiguously from our last completed block and validate against our
// bundle cut state — the same trust the live ZoneBlock path (§IV-D)
// places in a block sender.

var _ env.Restartable = (*FullNode)(nil)

// zoneCatchup is the in-flight block catch-up of one full node.
type zoneCatchup struct {
	attempt int
	timer   env.Timer
	// target is the highest head any peer has claimed; catch-up finishes
	// once our own head reaches it (or a peer confirms we are current).
	target uint64
}

// pullState is one producer's outstanding bundle-gap pull.
type pullState struct {
	attempt  int
	from, to uint64
	timer    env.Timer
}

// CatchingUp reports whether a restart block catch-up is in flight.
func (f *FullNode) CatchingUp() bool { return f.catchup != nil }

// OnRestart implements env.Restartable.
func (f *FullNode) OnRestart() {
	if f.ctx == nil {
		return
	}
	// (1) Re-arm the periodic timer chains killed by the crash.
	for _, t := range []env.Timer{f.aliveTimer, f.heartbeatTimer, f.digestTimer} {
		if t != nil {
			t.Stop()
		}
	}
	f.armAlive()
	f.armHeartbeat()
	if f.cfg.DigestInterval > 0 && len(f.cfg.BackupPeers) > 0 {
		f.armDigest()
	}
	// (2) Drop control-plane state that went stale while we were down:
	// upstream senders have expired us, our subscribers have resubscribed
	// elsewhere, and relayer liveness info is outdated. Demotion is
	// deliberate — Algorithm 1 re-promotes us if the zone is short of
	// relayers. aliveVersion is retained so announcements stay monotonic.
	f.stripeSender = make(map[uint8]wire.NodeID)
	f.pendingSub = make(map[uint8]wire.NodeID)
	f.subscribers = make(map[uint8]map[wire.NodeID]bool)
	f.subCount = 0
	f.subsChanged()
	f.consensusDir = make(map[uint8]bool)
	f.isRelayer = false
	f.zoneRelayers = make(map[wire.NodeID]*relayerInfo)
	f.lastSeen = make(map[wire.NodeID]time.Time)
	// Pull retry timers died with the crash.
	for producer := range f.pulls {
		delete(f.pulls, producer)
	}
	f.bootstrap()
	// (3) Catch up the blocks committed while we were down.
	f.StartCatchup()
}

// StartCatchup begins (or restarts) block catch-up; idempotent while one
// is running.
func (f *FullNode) StartCatchup() {
	if f.catchup != nil {
		return
	}
	f.catchup = &zoneCatchup{target: f.lastHeight}
	f.sendCatchupRound()
}

// catchupTargets picks up to f+1 peers for one request round, rotating
// with the attempt counter so an unresponsive peer cannot stall recovery.
// Backup peers come first: they are in other zones, so a zone-local
// outage does not take out every candidate at once.
func (f *FullNode) catchupTargets(attempt int) []wire.NodeID {
	cands := make([]wire.NodeID, 0, len(f.cfg.BackupPeers)+len(f.cfg.ZonePeers))
	seen := make(map[wire.NodeID]bool)
	for _, p := range f.cfg.BackupPeers {
		if p != f.cfg.Self && !seen[p] {
			seen[p] = true
			cands = append(cands, p)
		}
	}
	zp := append([]wire.NodeID(nil), f.cfg.ZonePeers...)
	sort.Slice(zp, func(i, j int) bool { return zp[i] < zp[j] })
	for _, p := range zp {
		if p != f.cfg.Self && !seen[p] {
			seen[p] = true
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	k := f.cfg.F + 1
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]wire.NodeID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, cands[(attempt*k+i)%len(cands)])
	}
	return out
}

func (f *FullNode) sendCatchupRound() {
	cu := f.catchup
	if cu == nil {
		return
	}
	req := &BlockRequest{Height: f.lastHeight}
	for _, peer := range f.catchupTargets(cu.attempt) {
		f.ctx.Send(peer, req)
	}
	cu.attempt++
	delay := f.cfg.Retry.Delay(cu.attempt-1, f.ctx.Rand())
	cu.timer = f.ctx.After(delay, f.sendCatchupRound)
}

// onBlockRequest serves completed blocks from the retention ring. When
// the requester's next block (or the bundle bodies it references) has
// already been pruned here, the response carries a snapshot anchor: the
// lowest retained block whose bundle suffix this node can still serve in
// full, so the requester can fast-forward and replay from there.
func (f *FullNode) onBlockRequest(from wire.NodeID, req *BlockRequest) {
	const maxBlocks = 64
	resp := &BlockResponse{Head: f.lastHeight}
	start := req.Height
	if !f.servableFrom(start) {
		if anchor := f.findAnchor(start); anchor != nil {
			resp.Anchor = anchor
			start = anchor.Height
		} else {
			f.ctx.Send(from, resp) // head-only: we cannot help
			return
		}
	}
	for h := start + 1; h <= f.lastHeight; h++ {
		blk := f.recentBlock(h)
		if blk == nil {
			break
		}
		resp.Blocks = append(resp.Blocks, blk)
		if len(resp.Blocks) >= maxBlocks {
			break
		}
	}
	f.ctx.Send(from, resp)
}

// servableFrom reports whether this node can serve both the block run
// above height s and every bundle those blocks reference: the cut
// heights at s must still be above our pruning bases, and block s+1 must
// still be in the retention ring.
func (f *FullNode) servableFrom(s uint64) bool {
	var cuts []uint64
	if s == 0 {
		cuts = core.ZeroCuts(f.cfg.NC)
	} else if blk := f.recentBlock(s); blk != nil {
		cuts = blk.CutHeights()
	} else if s == f.lastHeight {
		return true // nothing above s to serve
	} else {
		return false // block s evicted: cannot prove continuity
	}
	if s < f.lastHeight && f.recentBlock(s+1) == nil {
		return false
	}
	for i, base := range f.mp.Bases() {
		if i < len(cuts) && cuts[i] < base {
			return false
		}
	}
	return true
}

// findAnchor returns the lowest retained block above s that this node
// can serve a complete bundle suffix for, or nil.
func (f *FullNode) findAnchor(s uint64) *core.PredisBlock {
	bases := f.mp.Bases()
	for h := s + 1; h <= f.lastHeight; h++ {
		blk := f.recentBlock(h)
		if blk == nil {
			continue
		}
		cuts := blk.CutHeights()
		ok := true
		for i, base := range bases {
			if i < len(cuts) && cuts[i] < base {
				ok = false
				break
			}
		}
		if ok {
			return blk
		}
	}
	return nil
}

// onBlockResponse feeds caught-up blocks into the normal completion path.
// Unlike onBlock it does not re-forward old blocks down the subscription
// tree: subscribers either saw them live or run their own catch-up.
func (f *FullNode) onBlockResponse(from wire.NodeID, resp *BlockResponse) {
	// Responses are useful with or without an active catch-up: the digest
	// path (§IV-F) also requests block runs when it spots a gap.
	if cu := f.catchup; cu != nil && resp.Head > cu.target {
		cu.target = resp.Head
	}
	if resp.Anchor != nil {
		f.adoptAnchor(from, resp.Anchor)
	}
	for _, blk := range resp.Blocks {
		if blk == nil || blk.Height <= f.lastHeight {
			continue
		}
		h := blk.Hash()
		if _, seen := f.seenBlocks[h]; seen {
			continue
		}
		if int(blk.Leader) >= f.cfg.NC ||
			!f.cfg.Signer.Verify(int(blk.Leader), h, blk.Sig) {
			f.ctx.Logf("multizone: catchup block with bad signature from %d", from)
			return
		}
		f.seenBlocks[h] = blk.Height
		f.pendBlocks = append(f.pendBlocks, blk)
	}
	// Validate/complete; missing bundles are pulled from the responder.
	f.tryCompleteBlocksFrom(from)
}

// adoptAnchor fast-forwards to a snapshot anchor: the bundles below its
// cuts have been pruned network-wide, so the node resumes from the
// anchor instead of replaying them (its local history keeps a gap, like
// any pruning node). The anchor carries the consensus leader's signature
// — the same trust the live ZoneBlock path places in a block sender —
// and every subsequent block must chain from it and validate, so a bogus
// anchor dead-ends instead of forking us silently.
func (f *FullNode) adoptAnchor(from wire.NodeID, anchor *core.PredisBlock) {
	if anchor.Height <= f.lastHeight {
		return
	}
	h := anchor.Hash()
	if int(anchor.Leader) >= f.cfg.NC ||
		!f.cfg.Signer.Verify(int(anchor.Leader), h, anchor.Sig) {
		f.ctx.Logf("multizone: anchor with bad signature from %d", from)
		return
	}
	f.ctx.Logf("multizone: node %d skip-syncs %d → %d (bundle retention exceeded)",
		f.cfg.Self, f.lastHeight, anchor.Height)
	f.mp.FastForward(anchor.CutHeights())
	f.lastCuts = anchor.CutHeights()
	f.lastBlock = h
	f.lastHeight = anchor.Height
	f.seenBlocks[h] = anchor.Height
	f.pushRecentBlock(anchor)
	// Blocks pending below the anchor can never complete anymore; pulls
	// for pruned ranges will reconcile against the fast-forwarded tips.
	kept := f.pendBlocks[:0]
	for _, blk := range f.pendBlocks {
		if blk != nil && blk.Height > anchor.Height {
			kept = append(kept, blk)
		}
	}
	f.pendBlocks = kept
	f.reconcilePulls()
}

// checkCatchupDone finishes catch-up once the chain head reached the
// highest head any peer claimed. Called whenever a block completes.
func (f *FullNode) checkCatchupDone() {
	cu := f.catchup
	if cu == nil || f.lastHeight < cu.target {
		return
	}
	if cu.timer != nil {
		cu.timer.Stop()
	}
	f.catchup = nil
	f.ctx.Logf("multizone: node %d caught up at height %d after %d rounds",
		f.cfg.Self, f.lastHeight, cu.attempt)
}

// --- bundle-gap pulls with backoff and holder rotation ---

// schedulePull starts (or extends) the retried pull of one producer's
// bundle gap. A single in-flight pull per producer suffices: the mempool
// reports the full gap each time, and retries re-read it.
func (f *FullNode) schedulePull(producer wire.NodeID, from, to uint64) {
	if st := f.pulls[producer]; st != nil {
		if to > st.to {
			st.to = to
		}
		if from < st.from {
			st.from = from
		}
		return // retry timer already running
	}
	st := &pullState{from: from, to: to}
	f.pulls[producer] = st
	f.firePull(producer, st)
}

func (f *FullNode) firePull(producer wire.NodeID, st *pullState) {
	targets := f.pullTargets(producer)
	if len(targets) == 0 {
		delete(f.pulls, producer)
		return
	}
	target := targets[st.attempt%len(targets)]
	f.ctx.Send(target, &core.BundleRequest{Producer: producer, From: st.from, To: st.to})
	st.attempt++
	delay := f.cfg.Retry.Delay(st.attempt-1, f.ctx.Rand())
	st.timer = f.ctx.After(delay, func() {
		if f.pulls[producer] != st {
			return
		}
		// Re-read the gap: earlier heights may have arrived meanwhile.
		tips := f.mp.Tips()
		if int(producer) < len(tips) && tips[producer] >= st.to {
			delete(f.pulls, producer)
			return
		}
		if int(producer) < len(tips) && tips[producer]+1 > st.from {
			st.from = tips[producer] + 1
		}
		f.firePull(producer, st)
	})
}

// reconcilePulls clears pulls whose gaps have been filled (called after a
// BundleResponse lands, so a satisfied pull stops retrying immediately).
func (f *FullNode) reconcilePulls() {
	if len(f.pulls) == 0 {
		return
	}
	tips := f.mp.Tips()
	for producer, st := range f.pulls {
		if int(producer) < len(tips) && tips[producer] >= st.to {
			if st.timer != nil {
				st.timer.Stop()
			}
			delete(f.pulls, producer)
		}
	}
}

// --- recent-block retention ring ---

// pushRecentBlock records a completed block for BlockRequest service.
func (f *FullNode) pushRecentBlock(blk *core.PredisBlock) {
	if f.cfg.CatchupWindow <= 0 {
		return
	}
	if f.recentBlks == nil {
		f.recentBlks = make([]*core.PredisBlock, f.cfg.CatchupWindow)
	}
	f.recentBlks[int(blk.Height)%f.cfg.CatchupWindow] = blk
}

// recentBlock returns the retained block at a height, or nil if evicted.
func (f *FullNode) recentBlock(height uint64) *core.PredisBlock {
	if f.cfg.CatchupWindow <= 0 || len(f.recentBlks) == 0 || height == 0 {
		return nil
	}
	blk := f.recentBlks[int(height)%f.cfg.CatchupWindow]
	if blk == nil || blk.Height != height {
		return nil
	}
	return blk
}
