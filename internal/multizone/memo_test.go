package multizone

import (
	"testing"
	"time"

	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/wire"
)

// sameBacking reports whether two non-empty slices share a backing array
// (the memoization witness: an unchanged set must not be rebuilt).
func sameBacking(a, b []wire.NodeID) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

func idsEqual(got []wire.NodeID, want ...wire.NodeID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestDistributorLiveSubscribersMemoized: the sorted fan-out view is
// rebuilt only when the subscriber set changes — subscribe, unsubscribe,
// and TTL expiry each invalidate it; repeated fan-outs in between reuse
// the same slice.
func TestDistributorLiveSubscribersMemoized(t *testing.T) {
	node.RegisterAllMessages()
	RegisterMessages()
	striper, _ := NewStriper(4, 1)
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond)})
	d := NewDistributor(2, 4, striper, 0)
	distHost := &distHandler{d: d}
	net.AddNode(2, distHost)
	for _, id := range []wire.NodeID{50, 51, 52} {
		net.AddNode(id, &recHandler{onRecv: func(wire.NodeID, wire.Message) {}})
	}
	net.Start()

	distHost.inject(51, &Subscribe{Stripes: []uint8{2}})
	distHost.inject(50, &Subscribe{Stripes: []uint8{2}})
	s1 := d.liveSubscribers()
	if !idsEqual(s1, 50, 51) {
		t.Fatalf("liveSubscribers = %v, want [50 51] (ascending, map-order independent)", s1)
	}
	if s2 := d.liveSubscribers(); !sameBacking(s1, s2) {
		t.Fatal("unchanged subscriber set was rebuilt between fan-outs")
	}

	// Subscribe invalidates.
	distHost.inject(52, &Subscribe{Stripes: []uint8{2}})
	if s := d.liveSubscribers(); !idsEqual(s, 50, 51, 52) {
		t.Fatalf("after subscribe liveSubscribers = %v, want [50 51 52]", s)
	}

	// Unsubscribe invalidates.
	distHost.inject(51, &Unsubscribe{Stripes: []uint8{2}})
	s3 := d.liveSubscribers()
	if !idsEqual(s3, 50, 52) {
		t.Fatalf("after unsubscribe liveSubscribers = %v, want [50 52]", s3)
	}
	if s4 := d.liveSubscribers(); !sameBacking(s3, s4) {
		t.Fatal("unchanged set rebuilt after unsubscribe settled")
	}

	// TTL expiry invalidates: advance virtual time past the TTL with no
	// heartbeats; the next fan-out view must be empty.
	d.SetSubscriberTTL(100 * time.Millisecond)
	net.Run(time.Second)
	if s := d.liveSubscribers(); len(s) != 0 {
		t.Fatalf("after TTL expiry liveSubscribers = %v, want empty", s)
	}
	if d.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after expiry, want 0", d.Subscribers())
	}
}

// TestFullNodeSortedSubscribersMemoized: the full node's deduped sorted
// view is memoized between subscription changes and invalidated by
// unsubscribe handling.
func TestFullNodeSortedSubscribersMemoized(t *testing.T) {
	f := &FullNode{
		subscribers: map[uint8]map[wire.NodeID]bool{
			0: {201: true, 105: true},
			1: {105: true, 300: true}, // 105 subscribes to two stripes: deduped
		},
		subCount: 4,
	}
	s1 := f.sortedSubscribers()
	if !idsEqual(s1, 105, 201, 300) {
		t.Fatalf("sortedSubscribers = %v, want [105 201 300] (deduped, ascending)", s1)
	}
	if s2 := f.sortedSubscribers(); !sameBacking(s1, s2) {
		t.Fatal("unchanged subscriber set was rebuilt between calls")
	}

	// Unsubscribe 105 from stripe 1 only: still subscribed via stripe 0.
	f.onUnsubscribe(105, &Unsubscribe{Stripes: []uint8{1}})
	if s := f.sortedSubscribers(); !idsEqual(s, 105, 201, 300) {
		t.Fatalf("after partial unsubscribe = %v, want [105 201 300]", s)
	}
	// Unsubscribe 105 from stripe 0 too: now gone.
	f.onUnsubscribe(105, &Unsubscribe{Stripes: []uint8{0}})
	if s := f.sortedSubscribers(); !idsEqual(s, 201, 300) {
		t.Fatalf("after full unsubscribe = %v, want [201 300]", s)
	}
	if f.subCount != 2 {
		t.Fatalf("subCount = %d, want 2", f.subCount)
	}
}
