package multizone

import (
	"testing"
	"time"

	"predis/internal/faults"
	"predis/internal/wire"
)

// sumByzStats totals the Byzantine-hardening counters across a cluster.
func sumByzStats(zc *zoneCluster) (rejected, refetches, quarantines, rewires uint64) {
	for _, fn := range zc.fulls {
		rj, rf, q, rw := fn.ByzStats()
		rejected += rj
		refetches += rf
		quarantines += q
		rewires += rw
	}
	return
}

// busiestRelayer returns the converged relayer with the most downstream
// subscriptions — the node whose misbehaviour hurts the most.
func busiestRelayer(t *testing.T, zc *zoneCluster) *FullNode {
	t.Helper()
	var best *FullNode
	for _, fn := range zc.fulls {
		if fn.IsRelayer() && (best == nil || fn.subCount > best.subCount) {
			best = fn
		}
	}
	if best == nil || best.subCount == 0 {
		t.Fatal("no relayer with downstream subscribers converged")
	}
	return best
}

// lastHeights snapshots the newest completed block height per full node.
func lastHeights(zc *zoneCluster) map[wire.NodeID]uint64 {
	out := make(map[wire.NodeID]uint64)
	for _, fn := range zc.fulls {
		hs := zc.completed[fn.cfg.Self]
		if len(hs) > 0 {
			out[fn.cfg.Self] = hs[len(hs)-1]
		}
	}
	return out
}

// TestByzCountersZeroOnBenignRuns pins the replay-identity contract: on a
// run with only benign faults (loss, a crash window) every hardening
// counter stays zero — verification never fails without an adversary, so
// the always-on reject/refetch/quarantine paths are traffic-neutral.
func TestByzCountersZeroOnBenignRuns(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 6,
		rate: 300, duration: 8 * time.Second, loss: 0.03,
	}
	zc := buildZoneCluster(t, cfg)
	faults.Install(zc.net, faults.Schedule{Seed: 7, Actions: []faults.Action{
		faults.CrashWindow{Node: fullNodeID(0, 4), From: 3 * time.Second, To: 5 * time.Second},
	}})
	zc.net.Start()
	zc.net.Run(cfg.duration)

	if rj, rf, q, rw := sumByzStats(zc); rj+rf+q+rw != 0 {
		t.Fatalf("benign run moved hardening counters: rejected=%d refetches=%d quarantines=%d rewires=%d",
			rj, rf, q, rw)
	}
	for i, h := range zc.hosts {
		if n := h.Dist.Unexpected(); n != 0 {
			t.Fatalf("consensus node %d counted %d unexpected messages on a benign run", i, n)
		}
	}
	if u := zc.net.Dropped().Undecodable; u != 0 {
		t.Fatalf("benign run produced %d undecodable frames", u)
	}
	if zc.commits == 0 {
		t.Fatal("cluster made no progress")
	}
}

// TestCorruptingRelayerRejectedRefetchedQuarantined converges a zone, then
// turns its busiest relayer into a stripe corrupter for a window. Its
// subscribers must reject every tampered stripe on Merkle-proof failure,
// refetch the bundles from alternate sources, quarantine the offender
// after repeat offenses, and keep completing blocks throughout — and once
// the window closes the zone heals (quarantine TTL expiry lets the
// offender serve again).
func TestCorruptingRelayerRejectedRefetchedQuarantined(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 6,
		rate: 300, duration: 14 * time.Second,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(4 * time.Second) // converge the subscription tree

	evil := busiestRelayer(t, zc)
	before := lastHeights(zc)
	faults.Install(zc.net, faults.Schedule{Seed: 11, Actions: []faults.Action{
		faults.CorruptStripe{Node: evil.cfg.Self,
			From: 4200 * time.Millisecond, To: 7 * time.Second},
	}})
	t.Logf("corrupting relayer %d (downstream subs: %d)", evil.cfg.Self, evil.subCount)
	zc.net.Run(cfg.duration - 4*time.Second)

	rejected, refetches, quarantines, _ := sumByzStats(zc)
	if rejected == 0 {
		t.Fatal("no tampered stripe was rejected")
	}
	if refetches == 0 {
		t.Fatal("rejected stripes triggered no refetch")
	}
	if quarantines == 0 {
		t.Fatal("a repeat offender was never quarantined")
	}
	// Self-healing: every full node (the offender included — it is the
	// network forging its traffic, the node itself is honest) must have
	// completed new blocks after the attack opened.
	for _, fn := range zc.fulls {
		hs := zc.completed[fn.cfg.Self]
		if len(hs) == 0 || hs[len(hs)-1] <= before[fn.cfg.Self] {
			t.Fatalf("node %d stalled at height %d during the attack",
				fn.cfg.Self, before[fn.cfg.Self])
		}
	}
	t.Logf("rejected=%d refetches=%d quarantines=%d", rejected, refetches, quarantines)
}

// TestWithheldStripesStarveThenRewire arms the opt-in starvation detector
// and makes the busiest relayer silently withhold stripes (heartbeats
// still flow, so liveness expiry never fires — only the data-plane
// starvation counter can catch it). Victims must notice consecutive
// bundles assembling without the withheld stripe and resubscribe to an
// alternate source.
func TestWithheldStripesStarveThenRewire(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 6,
		rate: 300, duration: 14 * time.Second,
		starveRewire: 3,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(4 * time.Second)

	evil := busiestRelayer(t, zc)
	before := lastHeights(zc)
	// The window never closes: recovery must come from rewiring, not from
	// the attacker relenting.
	faults.Install(zc.net, faults.Schedule{Seed: 19, Actions: []faults.Action{
		faults.WithholdStripes{Node: evil.cfg.Self,
			From: 4200 * time.Millisecond, To: cfg.duration + time.Second},
	}})
	t.Logf("withholding relayer %d (downstream subs: %d)", evil.cfg.Self, evil.subCount)
	zc.net.Run(cfg.duration - 4*time.Second)

	_, _, _, rewires := sumByzStats(zc)
	if rewires == 0 {
		t.Fatal("starved subscribers never rewired away from the withholder")
	}
	for _, fn := range zc.fulls {
		if fn.cfg.Self == evil.cfg.Self {
			continue
		}
		hs := zc.completed[fn.cfg.Self]
		if len(hs) == 0 || hs[len(hs)-1] <= before[fn.cfg.Self] {
			t.Fatalf("node %d stalled at height %d under withholding",
				fn.cfg.Self, before[fn.cfg.Self])
		}
	}
	t.Logf("rewires=%d", rewires)
}
