package multizone

import (
	"sort"
	"time"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/exec"
	"predis/internal/ledger"
	"predis/internal/obs"
	"predis/internal/wire"
)

// FullNodeConfig parameterizes a Multi-Zone full node (relayer or ordinary
// node; the role is decided dynamically by Algorithm 1).
type FullNodeConfig struct {
	// Self is this node's ID.
	Self wire.NodeID
	// Zone is the node's zone index (assigned by locality at network
	// construction, §IV-A).
	Zone int
	// JoinSeq is the node's network join order; the paper derives it from
	// the position of registration transactions on chain, we assign it at
	// construction.
	JoinSeq uint64
	// NC and F describe the consensus group; consensus node IDs are
	// 0..NC-1 and consensus node i serves stripe i.
	NC, F int
	// Striper encodes/decodes stripes (must match the consensus side).
	Striper *Striper
	// Signer verifies bundle and block signatures (any index works; only
	// verification is used).
	Signer crypto.Signer
	// ZonePeers are the other full nodes of this zone (neighbor set and
	// relayer bootstrap).
	ZonePeers []wire.NodeID
	// BackupPeers are nodes in neighboring zones for digest exchange
	// (§IV-F).
	BackupPeers []wire.NodeID
	// MaxSubscribers caps total subscriptions this node accepts (Fig. 8
	// uses 24 to equalize bandwidth with the random topology).
	MaxSubscribers int
	// AliveInterval paces relayerAlive broadcasts and relayer-count
	// checks; HeartbeatInterval paces liveness probes.
	AliveInterval     time.Duration
	HeartbeatInterval time.Duration
	// DigestInterval paces backup-connection digests (0 disables).
	DigestInterval time.Duration
	// OnBlockComplete fires when this node has reconstructed a full block
	// (Predis block + every referenced bundle).
	OnBlockComplete func(blk *core.PredisBlock, txs int)
	// OnBundle fires for every bundle this node assembles from stripes.
	OnBundle func(b *core.Bundle)
	// Ledger, when non-nil, records every completed block (§II: full
	// nodes maintain the ledger history).
	Ledger *ledger.Ledger
	// Executor, when non-nil, applies each completed block's semantic
	// operations to this full node's account state machine; the
	// resulting state root is stamped into the ledger entry so the
	// persisted chain commits to execution, not just ordering.
	Executor *exec.Machine
	// ExecSerial forces the reference serial committer (see node.Config).
	ExecSerial bool
	// OnExecute observes each executed block's result.
	OnExecute func(r exec.Result)
	// KeepConfirmed bounds retained bundles per chain.
	KeepConfirmed int
	// Retry paces bundle-pull retries and restart catch-up rounds. The
	// zero value selects env.DefaultBackoff(AliveInterval).
	Retry env.Backoff
	// QuarantineAfter is how many cryptographic offenses (a stripe whose
	// Merkle proof or bundle-header signature fails verification) a peer
	// may commit before this node blacklists it. Only proof/signature
	// failures count — gaps, timeouts, and losses never do — so benign
	// runs are unaffected. Default 3; negative disables quarantine.
	QuarantineAfter int
	// QuarantineTTL is how long a quarantined peer stays blacklisted
	// before it may serve or receive stripes again. Default
	// 8×AliveInterval.
	QuarantineTTL time.Duration
	// StarveRewireAfter rewires a stripe subscription to an alternate
	// source after this many consecutively assembled bundles were missing
	// that stripe at assembly time while its sender had been silent for
	// 2×AliveInterval (lateness alone is never charged: bundles assemble
	// at n_c−f stripes, so the slowest sender is routinely absent at
	// assembly). A single receiver cannot distinguish withholding from
	// path loss, so the rewire heuristic is opt-in: zero (the default)
	// disables it, and the Byzantine harness enables it.
	StarveRewireAfter int
	// CatchupWindow bounds the ring of completed blocks retained to serve
	// BlockRequests from restarting peers (default 512, <0 disables).
	CatchupWindow int
	// Trace, when non-nil, closes the stripe_distributed and
	// fullnode_delivered lifecycle spans (anchored by the consensus-side
	// distributor) when bundles assemble and blocks complete here. Nil
	// disables tracing at zero cost.
	Trace *obs.Tracer
}

func (c *FullNodeConfig) withDefaults() FullNodeConfig {
	out := *c
	if out.MaxSubscribers <= 0 {
		out.MaxSubscribers = 64
	}
	if out.AliveInterval <= 0 {
		out.AliveInterval = 500 * time.Millisecond
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = time.Second
	}
	if out.Retry == (env.Backoff{}) {
		out.Retry = env.DefaultBackoff(out.AliveInterval)
	}
	if out.QuarantineAfter == 0 {
		out.QuarantineAfter = 3
	}
	if out.QuarantineTTL <= 0 {
		out.QuarantineTTL = 8 * out.AliveInterval
	}
	if out.CatchupWindow == 0 {
		out.CatchupWindow = 512
	}
	return out
}

// relayerInfo tracks one known relayer of this node's zone. An entry with
// no stripes is a tombstone for a demoted relayer, kept so announcement
// versions stay monotonic.
type relayerInfo struct {
	joinSeq   uint64
	version   uint64
	stripes   []uint8
	lastAlive time.Time
}

// active reports whether the entry describes a live relayer (tombstones
// are not active).
func (r *relayerInfo) active() bool { return len(r.stripes) > 0 }

// partialBundle accumulates stripes for one bundle header.
type partialBundle struct {
	header  core.BundleHeader
	stripes []*StripeMsg
	have    int
	done    bool
}

// FullNode is a Multi-Zone full node: it subscribes to stripes, forwards
// them down its subscription tree, reassembles bundles, and reconstructs
// blocks from Predis blocks plus its local bundle chains.
type FullNode struct {
	cfg FullNodeConfig
	ctx env.Context
	mp  *core.Mempool

	// Subscription state.
	stripeSender map[uint8]wire.NodeID          // who sends us each stripe
	pendingSub   map[uint8]wire.NodeID          // outstanding subscribe requests
	subscribers  map[uint8]map[wire.NodeID]bool // who we forward each stripe to
	subCount     int                            // total subscriptions accepted
	subsSorted   []wire.NodeID                  // memoized sortedSubscribers view; nil = dirty
	consensusDir map[uint8]bool                 // stripes we take straight from consensus (our "relayed stripes")
	isRelayer    bool
	zoneRelayers map[wire.NodeID]*relayerInfo
	aliveVersion uint64 // our own announcement version counter

	// Data plane.
	partials   map[crypto.Hash]*partialBundle // by header hash
	lastCuts   []uint64
	lastBlock  crypto.Hash
	lastHeight uint64
	seenBlocks map[crypto.Hash]uint64 // block hash → height, pruned as the chain advances
	pendBlocks []*core.PredisBlock    // completable once bundles arrive, in arrival order
	pulls      map[wire.NodeID]*pullState
	recentBlks []*core.PredisBlock // retention ring serving BlockRequests
	catchup    *zoneCatchup
	// specBlocks buffers speculatively pushed *proposed* blocks (streaming
	// commit) by block hash until the ordered copy finalizes them, a
	// ZoneSpecDiscard retracts them, or the TTL sweep expires them.
	specBlocks map[crypto.Hash]*specEntry

	// Periodic timers, stored so a restart can re-arm them (the fires
	// suppressed during a crash permanently kill a self-re-arming chain).
	aliveTimer     env.Timer
	heartbeatTimer env.Timer
	digestTimer    env.Timer

	// Liveness tracking.
	lastSeen map[wire.NodeID]time.Time

	// Byzantine hardening (see byzantine.go).
	offenses    map[wire.NodeID]int       // cryptographic offenses per peer
	quarantined map[wire.NodeID]time.Time // blacklist expiry per peer
	starve      map[uint8]int             // consecutive starved assemblies per stripe
	stripeSeen  map[uint8]time.Time       // last stripe-s traffic from its subscribed sender
	refetching  map[crypto.Hash]bool      // damaged bundles with a live refetch loop

	// Stats.
	bundles     uint64
	blocks      uint64
	stripesIn   uint64
	rejected    uint64
	refetches   uint64
	quarantines uint64
	rewires     uint64
	specHits    uint64 // speculative blocks the ordered chain finalized
	specWaste   uint64 // speculative blocks discarded, superseded, or expired
}

var _ env.Handler = (*FullNode)(nil)

// NewFullNode builds a full node.
func NewFullNode(cfg FullNodeConfig) (*FullNode, error) {
	c := cfg.withDefaults()
	mp, err := core.NewMempool(core.Params{
		NC: c.NC, F: c.F, BundleSize: 1, // BundleSize unused on the receive path
		KeepConfirmed: c.KeepConfirmed,
		Signer:        c.Signer,
	})
	if err != nil {
		return nil, err
	}
	return &FullNode{
		cfg:          c,
		mp:           mp,
		stripeSender: make(map[uint8]wire.NodeID),
		pendingSub:   make(map[uint8]wire.NodeID),
		subscribers:  make(map[uint8]map[wire.NodeID]bool),
		consensusDir: make(map[uint8]bool),
		zoneRelayers: make(map[wire.NodeID]*relayerInfo),
		partials:     make(map[crypto.Hash]*partialBundle),
		pulls:        make(map[wire.NodeID]*pullState),
		seenBlocks:   make(map[crypto.Hash]uint64),
		lastSeen:     make(map[wire.NodeID]time.Time),
		offenses:     make(map[wire.NodeID]int),
		quarantined:  make(map[wire.NodeID]time.Time),
		starve:       make(map[uint8]int),
		stripeSeen:   make(map[uint8]time.Time),
		refetching:   make(map[crypto.Hash]bool),
		specBlocks:   make(map[crypto.Hash]*specEntry),
		lastCuts:     core.ZeroCuts(c.NC),
	}, nil
}

// IsRelayer reports whether this node currently relays stripes from
// consensus nodes.
func (f *FullNode) IsRelayer() bool { return f.isRelayer }

// RelayedStripes returns the stripes this node takes directly from
// consensus nodes (the paper's RelayedStripes()).
func (f *FullNode) RelayedStripes() []uint8 {
	out := make([]uint8, 0, len(f.consensusDir))
	for s := range f.consensusDir {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns (stripes received, bundles assembled, blocks completed).
func (f *FullNode) Stats() (stripes, bundles, blocks uint64) {
	return f.stripesIn, f.bundles, f.blocks
}

// SpecStats returns how many speculatively delivered blocks the ordered
// chain finalized (hits) and how many were discarded, superseded, or
// expired unused (waste).
func (f *FullNode) SpecStats() (hits, waste uint64) { return f.specHits, f.specWaste }

// ID returns this node's wire identity.
func (f *FullNode) ID() wire.NodeID { return f.cfg.Self }

// LastHeight returns the height of the last completed block.
func (f *FullNode) LastHeight() uint64 { return f.lastHeight }

// Mempool exposes the node's bundle store (read-only use).
func (f *FullNode) Mempool() *core.Mempool { return f.mp }

// Start implements env.Handler: bootstrap relayer discovery, then run
// Algorithm 1.
func (f *FullNode) Start(ctx env.Context) {
	f.ctx = ctx
	f.cfg.Striper.SetPool(compute.PoolOf(ctx))
	f.bootstrap()
	f.armAlive()
	f.armHeartbeat()
	if f.cfg.DigestInterval > 0 && len(f.cfg.BackupPeers) > 0 {
		f.armDigest()
	}
}

// bootstrap runs relayer discovery: ask a few zone peers for the current
// relayer set (Alg. 1 line 1), give responses a beat to arrive, then
// subscribe. The first node of a zone finds no relayers and goes straight
// to the consensus nodes. Also re-run on restart.
func (f *FullNode) bootstrap() {
	asked := 0
	for _, p := range f.cfg.ZonePeers {
		if asked >= 3 {
			break
		}
		f.ctx.Send(p, &GetRelayers{Zone: uint32(f.cfg.Zone)})
		asked++
	}
	f.ctx.After(50*time.Millisecond, f.runSubscription)
}

// runSubscription is Algorithm 1: subscribe up to half of each relayer's
// relayed stripes, then take the remainder straight from consensus nodes
// (becoming a relayer).
func (f *FullNode) runSubscription() {
	needed := make([]uint8, 0, f.cfg.NC)
	for s := 0; s < f.cfg.NC; s++ {
		si := uint8(s)
		if _, have := f.stripeSender[si]; !have {
			if _, pend := f.pendingSub[si]; !pend {
				needed = append(needed, si)
			}
		}
	}
	if len(needed) == 0 {
		return
	}
	neededSet := make(map[uint8]bool, len(needed))
	for _, s := range needed {
		neededSet[s] = true
	}
	// Deterministic relayer order: by join sequence.
	type cand struct {
		id   wire.NodeID
		info *relayerInfo
	}
	cands := make([]cand, 0, len(f.zoneRelayers))
	for id, info := range f.zoneRelayers {
		if id != f.cfg.Self && info.active() && !f.isQuarantined(id) {
			cands = append(cands, cand{id, info})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].info.joinSeq < cands[j].info.joinSeq })
	for _, c := range cands {
		// Alg. 1 line 5: at most half of the relayer's stripes.
		max := (len(c.info.stripes) + 1) / 2
		var take []uint8
		for _, s := range c.info.stripes {
			if len(take) >= max {
				break
			}
			if neededSet[s] {
				take = append(take, s)
				delete(neededSet, s)
			}
		}
		if len(take) > 0 {
			f.sendSubscribe(c.id, take)
		}
	}
	// Alg. 1 lines 9-12: leftover stripes go straight to consensus node s
	// (in stripe order, so map iteration never affects the wire).
	leftover := make([]uint8, 0, len(neededSet))
	for s := range neededSet {
		leftover = append(leftover, s)
	}
	sort.Slice(leftover, func(i, j int) bool { return leftover[i] < leftover[j] })
	for _, s := range leftover {
		if f.isQuarantined(wire.NodeID(s)) {
			continue // retried once the blacklist TTL expires
		}
		f.sendSubscribe(wire.NodeID(s), []uint8{s})
	}
}

func (f *FullNode) sendSubscribe(to wire.NodeID, stripes []uint8) {
	for _, s := range stripes {
		f.pendingSub[s] = to
	}
	f.ctx.Send(to, &Subscribe{Stripes: stripes})
	// Re-run the algorithm if the subscription goes unanswered.
	f.ctx.After(4*f.cfg.AliveInterval, func() {
		stale := false
		for _, s := range stripes {
			if f.pendingSub[s] == to {
				delete(f.pendingSub, s)
				stale = true
			}
		}
		if stale {
			f.runSubscription()
		}
	})
}

// Receive implements env.Handler.
func (f *FullNode) Receive(from wire.NodeID, m wire.Message) {
	f.lastSeen[from] = f.ctx.Now()
	if f.isQuarantined(from) {
		return // blacklisted peer: everything it sends is ignored until the TTL expires
	}
	switch msg := m.(type) {
	case *StripeMsg:
		f.onStripe(from, msg)
	case *ZoneBlock:
		f.onBlock(from, msg.Block)
	case *ZoneSpec:
		f.onSpecBlock(from, msg.Block)
	case *ZoneSpecDiscard:
		f.onSpecDiscard(from, msg)
	case *Subscribe:
		f.onSubscribe(from, msg)
	case *AcceptSubscribe:
		f.onAcceptSubscribe(from, msg)
	case *RejectSubscribe:
		f.onRejectSubscribe(from, msg)
	case *Unsubscribe:
		f.onUnsubscribe(from, msg)
	case *RelayerAlive:
		f.onRelayerAlive(from, msg)
	case *GetRelayers:
		f.onGetRelayers(from, msg)
	case *RelayersInfo:
		f.onRelayersInfo(from, msg)
	case *Leave:
		f.onLeave(from, msg)
	case *Heartbeat:
		// lastSeen already updated above.
	case *BlockDigest:
		f.onDigest(from, msg)
	case *BlockRequest:
		f.onBlockRequest(from, msg)
	case *BlockResponse:
		f.onBlockResponse(from, msg)
	case *core.BundleRequest:
		f.onBundleRequest(from, msg)
	case *core.BundleResponse:
		for _, b := range msg.Bundles {
			f.storeBundle(b, true)
		}
		f.reconcilePulls()
		f.tryCompleteBlocks()
	default:
		f.ctx.Logf("multizone: unexpected %s from %d", wire.TypeName(m.Type()), from)
	}
}

// --- subscription control plane ---

func (f *FullNode) onSubscribe(from wire.NodeID, m *Subscribe) {
	if f.subCount+len(m.Stripes) > f.cfg.MaxSubscribers {
		// Refer the requester to our own subscribers (§IV-D).
		children := f.sortedSubscribers()
		if len(children) > 4 {
			children = children[:4]
		}
		f.ctx.Send(from, &RejectSubscribe{Stripes: m.Stripes, Children: children})
		return
	}
	var accepted []uint8
	for _, s := range m.Stripes {
		// We can serve a stripe we receive ourselves (or will receive).
		if _, have := f.stripeSender[s]; !have && !f.consensusDir[s] {
			if _, pend := f.pendingSub[s]; !pend {
				continue
			}
		}
		if f.subscribers[s] == nil {
			f.subscribers[s] = make(map[wire.NodeID]bool)
		}
		if !f.subscribers[s][from] {
			f.subscribers[s][from] = true
			f.subCount++
			f.subsChanged()
		}
		accepted = append(accepted, s)
	}
	if len(accepted) > 0 {
		f.ctx.Send(from, &AcceptSubscribe{Stripes: accepted, FromConsensus: false})
	}
}

func (f *FullNode) onAcceptSubscribe(from wire.NodeID, m *AcceptSubscribe) {
	became := false
	for _, s := range m.Stripes {
		if f.pendingSub[s] != from {
			continue
		}
		delete(f.pendingSub, s)
		f.stripeSender[s] = from
		f.stripeSeen[s] = f.ctx.Now() // fresh sender: full starvation grace
		if m.FromConsensus {
			f.consensusDir[s] = true
			became = true
		}
	}
	if became && !f.isRelayer {
		f.isRelayer = true
	}
	if became {
		f.broadcastAlive()
	}
}

func (f *FullNode) onRejectSubscribe(from wire.NodeID, m *RejectSubscribe) {
	// Try the suggested children, else fall back to consensus.
	for _, s := range m.Stripes {
		if f.pendingSub[s] != from {
			continue
		}
		delete(f.pendingSub, s)
		if len(m.Children) > 0 {
			child := m.Children[int(s)%len(m.Children)]
			if child != f.cfg.Self && !f.isQuarantined(child) {
				f.sendSubscribe(child, []uint8{s})
				continue
			}
		}
		f.sendSubscribe(wire.NodeID(s), []uint8{s})
	}
}

func (f *FullNode) onUnsubscribe(from wire.NodeID, m *Unsubscribe) {
	for _, s := range m.Stripes {
		if subs := f.subscribers[s]; subs != nil && subs[from] {
			delete(subs, from)
			f.subCount--
			f.subsChanged()
		}
	}
}

func (f *FullNode) onGetRelayers(from wire.NodeID, m *GetRelayers) {
	if int(m.Zone) != f.cfg.Zone {
		return
	}
	info := &RelayersInfo{Zone: m.Zone}
	ids := make([]wire.NodeID, 0, len(f.zoneRelayers))
	for id := range f.zoneRelayers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if r := f.zoneRelayers[id]; r.active() {
			info.Relayers = append(info.Relayers, RelayerEntry{Node: id, JoinSeq: r.joinSeq, Stripes: r.stripes})
		}
	}
	if f.isRelayer {
		info.Relayers = append(info.Relayers, RelayerEntry{
			Node: f.cfg.Self, JoinSeq: f.cfg.JoinSeq, Stripes: f.RelayedStripes(),
		})
	}
	f.ctx.Send(from, info)
}

func (f *FullNode) onRelayersInfo(from wire.NodeID, m *RelayersInfo) {
	for _, r := range m.Relayers {
		if r.Node == f.cfg.Self || f.isQuarantined(r.Node) {
			continue
		}
		// Bootstrap info carries no version; only fill gaps so it never
		// rolls back fresher relayerAlive state.
		if _, known := f.zoneRelayers[r.Node]; known {
			continue
		}
		f.zoneRelayers[r.Node] = &relayerInfo{
			joinSeq: r.JoinSeq, stripes: r.Stripes, lastAlive: f.ctx.Now(),
		}
	}
}

// onRelayerAlive is Algorithm 2.
func (f *FullNode) onRelayerAlive(from wire.NodeID, m *RelayerAlive) {
	if int(m.Zone) != f.cfg.Zone || m.Relayer == f.cfg.Self {
		return
	}
	if f.isQuarantined(m.Relayer) {
		return // a blacklisted relayer cannot advertise itself back into the tree
	}
	prev := f.zoneRelayers[m.Relayer]
	if prev != nil && m.Version <= prev.version {
		// Stale or duplicate announcement: refresh liveness, never
		// re-forward (conflicting copies would otherwise circulate and
		// toggle state forever).
		if m.Version == prev.version {
			prev.lastAlive = f.ctx.Now()
		}
		return
	}
	// Fresh version: store it (demotions keep a tombstone entry so the
	// version stays monotonic).
	f.zoneRelayers[m.Relayer] = &relayerInfo{
		joinSeq: m.JoinSeq, version: m.Version, stripes: m.Stripes,
		lastAlive: f.ctx.Now(),
	}
	changed := prev == nil || !stripesEqual(prev.stripes, m.Stripes)

	if f.isRelayer && len(m.Stripes) > 0 {
		// Lines 7-13: overlap resolution. The paper's intent (Fig. 3(d))
		// is one consensus-direct relayer per stripe per zone; redundant
		// relayers hand shared stripes over and eventually demote. We use
		// a deterministic pairwise rule both sides can evaluate from the
		// announcement alone: for each shared stripe, the relayer with
		// the larger consensus-direct set yields it (join order breaks
		// ties, later yields), so exactly one side acts.
		shared := intersectStripes(f.RelayedStripes(), m.Stripes)
		theirCount := len(m.Stripes)
		yielded := false
		for _, s := range shared {
			myCount := len(f.consensusDir)
			if myCount > theirCount || (myCount == theirCount && f.cfg.JoinSeq > m.JoinSeq) {
				f.handOffStripe(s, m.Relayer)
				yielded = true
			}
		}
		if yielded {
			f.broadcastAlive()
		}
		// Lines 14-18: if our sender for a stripe no longer relays it, and
		// this relayer does, resubscribe to it.
		for _, s := range m.Stripes {
			sd, ok := f.stripeSender[s]
			if !ok || sd == m.Relayer || f.consensusDir[s] {
				continue
			}
			if info, known := f.zoneRelayers[sd]; known && info.active() && !containsStripe(info.stripes, s) {
				f.resubscribe(s, m.Relayer)
			}
		}
	}

	// Line 20: forward fresh information to zone neighbors.
	if changed {
		for _, p := range f.cfg.ZonePeers {
			if p != from && p != m.Relayer {
				f.ctx.Send(p, m)
			}
		}
	}

	// Lines 21-23: demote ourselves if we relay nothing anymore.
	if f.isRelayer && len(f.consensusDir) == 0 {
		f.demote()
	}
}

// handOffStripe stops taking a stripe from its consensus node and
// subscribes to the given relayer instead (Alg. 2's redundancy squeeze).
func (f *FullNode) handOffStripe(s uint8, to wire.NodeID) {
	if f.consensusDir[s] {
		delete(f.consensusDir, s)
		f.ctx.Send(wire.NodeID(s), &Unsubscribe{Stripes: []uint8{s}})
	}
	delete(f.stripeSender, s)
	f.sendSubscribe(to, []uint8{s})
}

// resubscribe moves one stripe to a new sender.
func (f *FullNode) resubscribe(s uint8, to wire.NodeID) {
	if old, ok := f.stripeSender[s]; ok {
		f.ctx.Send(old, &Unsubscribe{Stripes: []uint8{s}})
		delete(f.stripeSender, s)
	}
	f.sendSubscribe(to, []uint8{s})
}

func (f *FullNode) demote() {
	f.isRelayer = false
	direct := make([]uint8, 0, len(f.consensusDir))
	for s := range f.consensusDir {
		direct = append(direct, s)
	}
	sort.Slice(direct, func(i, j int) bool { return direct[i] < direct[j] })
	for _, s := range direct {
		f.ctx.Send(wire.NodeID(s), &Unsubscribe{Stripes: []uint8{s}})
		delete(f.consensusDir, s)
	}
	f.aliveVersion++
	alive := &RelayerAlive{
		Relayer: f.cfg.Self, JoinSeq: f.cfg.JoinSeq,
		Version: f.aliveVersion, Zone: uint32(f.cfg.Zone),
	}
	for _, p := range f.cfg.ZonePeers {
		f.ctx.Send(p, alive)
	}
}

func (f *FullNode) broadcastAlive() {
	if !f.isRelayer {
		return
	}
	f.aliveVersion++
	alive := &RelayerAlive{
		Relayer: f.cfg.Self, JoinSeq: f.cfg.JoinSeq, Version: f.aliveVersion,
		Stripes: f.RelayedStripes(), Zone: uint32(f.cfg.Zone),
	}
	for _, p := range f.cfg.ZonePeers {
		f.ctx.Send(p, alive)
	}
}

// armAlive runs the periodic relayer maintenance (§IV-E): broadcast
// relayerAlive, expire dead relayers, and promote ourselves when the zone
// has fewer than n_c relayers.
func (f *FullNode) armAlive() {
	f.aliveTimer = f.ctx.After(f.cfg.AliveInterval, func() {
		now := f.ctx.Now()
		for id, info := range f.zoneRelayers {
			if now.Sub(info.lastAlive) > 6*f.cfg.AliveInterval {
				delete(f.zoneRelayers, id)
			}
		}
		f.broadcastAlive()
		f.sweepDataPlane()
		count := 0
		for _, info := range f.zoneRelayers {
			if info.active() {
				count++
			}
		}
		if f.isRelayer {
			count++
		}
		if count < f.cfg.NC && !f.isRelayer {
			// Become a new relayer: take over stripes with no live relayer,
			// or stripe (JoinSeq mod NC) as a deterministic fallback.
			covered := make(map[uint8]bool)
			for _, info := range f.zoneRelayers {
				for _, s := range info.stripes {
					covered[s] = true
				}
			}
			promoted := false
			for s := 0; s < f.cfg.NC; s++ {
				if !covered[uint8(s)] {
					f.sendSubscribe(wire.NodeID(s), []uint8{uint8(s)})
					promoted = true
				}
			}
			if !promoted {
				s := uint8(f.cfg.JoinSeq % uint64(f.cfg.NC))
				f.sendSubscribe(wire.NodeID(s), []uint8{s})
			}
		}
		// Subscription repair: any stripe without a sender or pending
		// request gets re-run through Algorithm 1.
		f.runSubscription()
		f.armAlive()
	})
}

func (f *FullNode) armHeartbeat() {
	f.heartbeatTimer = f.ctx.After(f.cfg.HeartbeatInterval, func() {
		hb := &Heartbeat{}
		sent := make(map[wire.NodeID]bool)
		targets := make([]wire.NodeID, 0, len(f.stripeSender)+f.subCount)
		for _, sd := range f.stripeSender {
			if !sent[sd] {
				sent[sd] = true
				targets = append(targets, sd)
			}
		}
		for _, id := range f.sortedSubscribers() {
			if !sent[id] {
				sent[id] = true
				targets = append(targets, id)
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, id := range targets {
			f.ctx.Send(id, hb)
		}
		// Expire dead senders and resubscribe (§IV-E).
		now := f.ctx.Now()
		for s, sd := range f.stripeSender {
			if seen, ok := f.lastSeen[sd]; ok && now.Sub(seen) > 3*f.cfg.HeartbeatInterval {
				delete(f.stripeSender, s)
				delete(f.consensusDir, s)
			}
		}
		// Expire dead subscribers too: a crashed child would otherwise keep
		// consuming a subscription slot (and forwarding bandwidth) forever.
		for s, subs := range f.subscribers {
			for id := range subs {
				if seen, ok := f.lastSeen[id]; ok && now.Sub(seen) > 3*f.cfg.HeartbeatInterval {
					delete(subs, id)
					f.subCount--
					f.subsChanged()
				}
			}
			if len(subs) == 0 {
				delete(f.subscribers, s)
			}
		}
		f.armHeartbeat()
	})
}

// subsChanged invalidates the memoized sorted-subscriber view; every
// mutation of f.subscribers must call it.
func (f *FullNode) subsChanged() { f.subsSorted = nil }

// sortedSubscribers returns the distinct subscriber IDs across all stripes
// in ascending order (deterministic fan-out helper). The view is memoized
// between subscription changes: block fan-out, heartbeats, and digests all
// walk it, so rebuilding the dedup map + sort per call shows up in
// profiles. Callers must not retain or mutate the returned slice.
func (f *FullNode) sortedSubscribers() []wire.NodeID {
	if f.subsSorted == nil {
		seen := make(map[wire.NodeID]bool, f.subCount)
		out := make([]wire.NodeID, 0, f.subCount)
		for _, subs := range f.subscribers {
			for id := range subs {
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		f.subsSorted = out
	}
	return f.subsSorted
}

// Leave announces departure and hands relayer duty to the earliest
// subscriber (§IV-E).
func (f *FullNode) Leave() {
	if f.ctx == nil {
		return
	}
	msg := &Leave{IsRelayer: f.isRelayer}
	if f.isRelayer {
		if first, ok := f.earliestSubscriber(); ok {
			f.ctx.Send(first, msg)
		}
		return
	}
	for _, id := range f.sortedSubscribers() {
		f.ctx.Send(id, msg)
	}
}

func (f *FullNode) earliestSubscriber() (wire.NodeID, bool) {
	best := wire.NoNode
	for _, subs := range f.subscribers {
		for id := range subs {
			if best == wire.NoNode || id < best {
				best = id
			}
		}
	}
	return best, best != wire.NoNode
}

func (f *FullNode) onLeave(from wire.NodeID, m *Leave) {
	// Our sender is going away: resubscribe its stripes. If it was a
	// relayer, we take its place by going straight to consensus (§IV-E).
	lost := make([]uint8, 0, 4)
	for s, sd := range f.stripeSender {
		if sd == from {
			lost = append(lost, s)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, s := range lost {
		delete(f.stripeSender, s)
		delete(f.consensusDir, s)
		if m.IsRelayer {
			f.sendSubscribe(wire.NodeID(s), []uint8{s})
		}
	}
	delete(f.zoneRelayers, from)
	if !m.IsRelayer {
		f.runSubscription()
	}
}

// --- helpers ---

func stripesEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intersectStripes(a, b []uint8) []uint8 {
	set := make(map[uint8]bool, len(b))
	for _, s := range b {
		set[s] = true
	}
	var out []uint8
	for _, s := range a {
		if set[s] {
			out = append(out, s)
		}
	}
	return out
}

func containsStripe(ss []uint8, s uint8) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
