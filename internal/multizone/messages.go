package multizone

import (
	"encoding/binary"
	"sync"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/merkle"
	"predis/internal/wire"
)

// Message type tags for the Multi-Zone control and data plane.
const (
	TypeStripe          = wire.TypeRangeZone + 1
	TypeSubscribe       = wire.TypeRangeZone + 2
	TypeAcceptSubscribe = wire.TypeRangeZone + 3
	TypeRejectSubscribe = wire.TypeRangeZone + 4
	TypeUnsubscribe     = wire.TypeRangeZone + 5
	TypeRelayerAlive    = wire.TypeRangeZone + 6
	TypeLeave           = wire.TypeRangeZone + 7
	TypeHeartbeat       = wire.TypeRangeZone + 8
	TypeZoneBlock       = wire.TypeRangeZone + 9
	TypeBlockDigest     = wire.TypeRangeZone + 10
	TypeGetRelayers     = wire.TypeRangeZone + 11
	TypeRelayersInfo    = wire.TypeRangeZone + 12
	TypeBlockRequest    = wire.TypeRangeZone + 13
	TypeBlockResponse   = wire.TypeRangeZone + 14
	TypeSpec            = wire.TypeRangeZone + 15
	TypeSpecDiscard     = wire.TypeRangeZone + 16
)

// StripeMsg carries one erasure-coded stripe of a bundle plus the bundle
// header and the Merkle proof that makes the stripe self-verifying
// (§IV-D).
type StripeMsg struct {
	Header     core.BundleHeader
	Index      uint8
	PayloadLen uint32
	Shard      []byte
	Proof      []crypto.Hash

	// verified memoizes a successful Merkle-proof check. The simulator
	// hands the same *StripeMsg to every recipient and messages are
	// immutable once sent, so the proof needs checking once per stripe,
	// not once per full node. Failures are never cached.
	verified bool
	// assembled memoizes the bundle reconstructed from a stripe set
	// containing this message: every valid n_c−f subset reconstructs the
	// same body (Reed–Solomon), and the result is checked against the
	// header's commitments before caching, so the memo is value-identical
	// for every node that could reassemble it.
	assembled *core.Bundle
	// spec is the speculative Merkle-proof verification future launched
	// when the message is scheduled on the network and joined by
	// VerifyStripe at delivery. specNC records the stripe count the
	// speculation assumed (derived from the header's tip list); a striper
	// configured differently falls back to the inline check.
	spec   *compute.Future[stripeSpec]
	specNC int
}

// stripeSpec is the speculative verification result for one stripe.
type stripeSpec struct {
	headerHash crypto.Hash
	proofOK    bool
}

// Precompute implements compute.Speculative: it launches the stripe's
// Merkle-proof check and header hash on the compute pool when the message
// is scheduled. Fired once per recipient on the shared pointer, so it is
// idempotent; the snapshot of the header is taken here, on the event
// loop, and the worker closure reads only immutable fields.
func (m *StripeMsg) Precompute(p *compute.Pool) {
	if m.verified || m.spec != nil {
		return
	}
	nc := len(m.Header.Tips) // one tip per bundle chain = per stripe
	if nc == 0 || int(m.Index) >= nc {
		return // malformed; let the inline path produce the error
	}
	hdr := m.Header // snapshot on the event loop; memos never read by the worker
	shard, idx, proof := m.Shard, int(m.Index), m.Proof
	m.specNC = nc
	m.spec = compute.Go(p, func() stripeSpec {
		return stripeSpec{
			headerHash: hdr.HashStateless(),
			proofOK:    merkle.Verify(hdr.StripeRoot, shard, idx, nc, proof),
		}
	})
}

var _ compute.Speculative = (*StripeMsg)(nil)

// joinSpec forces the speculative future (if any) at the deterministic
// join point, installs the header-hash memo, and returns (proofOK, true)
// when the speculation used the striper's stripe count. (false, false)
// means no usable speculation — verify inline.
func (m *StripeMsg) joinSpec(nc int) (ok, joined bool) {
	if m.spec == nil {
		return false, false
	}
	s := m.spec.Force()
	m.spec = nil
	m.Header.PrimeHash(s.headerHash)
	if m.specNC != nc {
		return false, false
	}
	return s.proofOK, true
}

var _ wire.Message = (*StripeMsg)(nil)

// Type implements wire.Message.
func (m *StripeMsg) Type() wire.Type { return TypeStripe }

// WireSize implements wire.Message.
func (m *StripeMsg) WireSize() int {
	return wire.FrameOverhead + m.Header.EncodedSize() + 1 + 4 +
		wire.SizeVarBytes(m.Shard) + 4 + crypto.HashSize*len(m.Proof)
}

// EncodeBody implements wire.Message.
func (m *StripeMsg) EncodeBody(e *wire.Encoder) {
	m.Header.EncodeTo(e)
	e.U8(m.Index)
	e.U32(m.PayloadLen)
	e.VarBytes(m.Shard)
	e.U32(uint32(len(m.Proof)))
	for _, p := range m.Proof {
		e.Bytes32(p)
	}
}

func decodeStripe(d *wire.Decoder) (wire.Message, error) {
	h, err := core.DecodeBundleHeader(d)
	if err != nil {
		return nil, err
	}
	m := &StripeMsg{Header: *h, Index: d.U8(), PayloadLen: d.U32(), Shard: d.VarBytes()}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining()/crypto.HashSize {
		return nil, wire.ErrTruncated
	}
	m.Proof = make([]crypto.Hash, n)
	for i := range m.Proof {
		m.Proof[i] = d.Bytes32()
	}
	return m, d.Err()
}

var _ = merkle.Verify // keep import stable for documentation references

// TamperShard implements the fault injector's StripeTamperer interface
// structurally (faults cannot import this package: multizone's tests
// import faults). It returns a copy of the stripe with shard byte i (mod
// length) flipped and no memoized state — exactly what decoding a
// corrupted frame yields — so the receiver's Merkle check must fail.
// The original is untouched: the simulator shares one pointer across all
// recipients of a multicast.
func (m *StripeMsg) TamperShard(i int) wire.Message {
	cp := &StripeMsg{Header: m.Header, Index: m.Index, PayloadLen: m.PayloadLen, Proof: m.Proof}
	cp.Shard = append([]byte(nil), m.Shard...)
	if len(cp.Shard) > 0 {
		if i < 0 {
			i = -i
		}
		cp.Shard[i%len(cp.Shard)] ^= 0xff
	}
	return cp
}

// TamperProof implements the fault injector's StripeTamperer interface:
// the returned copy carries the intact shard under a valid-length garbage
// Merkle proof derived deterministically from seed. Receivers that verify
// proofs reject it exactly like a corrupted payload.
func (m *StripeMsg) TamperProof(seed uint64) wire.Message {
	cp := &StripeMsg{Header: m.Header, Index: m.Index, PayloadLen: m.PayloadLen, Shard: m.Shard}
	cp.Proof = make([]crypto.Hash, len(m.Proof))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], seed)
	for i := range cp.Proof {
		binary.LittleEndian.PutUint64(b[8:], uint64(i))
		cp.Proof[i] = crypto.HashBytes(b[:])
	}
	return cp
}

// Subscribe asks the receiver to forward the listed stripe indices.
type Subscribe struct {
	Stripes []uint8
}

var _ wire.Message = (*Subscribe)(nil)

// Type implements wire.Message.
func (m *Subscribe) Type() wire.Type { return TypeSubscribe }

// WireSize implements wire.Message.
func (m *Subscribe) WireSize() int { return wire.FrameOverhead + 4 + len(m.Stripes) }

// EncodeBody implements wire.Message.
func (m *Subscribe) EncodeBody(e *wire.Encoder) { encodeStripeList(e, m.Stripes) }

func encodeStripeList(e *wire.Encoder, ss []uint8) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.U8(s)
	}
}

func decodeStripeList(d *wire.Decoder) []uint8 {
	n := int(d.U32())
	if d.Err() != nil || n > d.Remaining() {
		return nil
	}
	out := make([]uint8, n)
	for i := range out {
		out[i] = d.U8()
	}
	return out
}

func decodeSubscribe(d *wire.Decoder) (wire.Message, error) {
	m := &Subscribe{Stripes: decodeStripeList(d)}
	return m, d.Err()
}

// AcceptSubscribe confirms a subscription for the listed stripes.
type AcceptSubscribe struct {
	Stripes []uint8
	// FromConsensus reports whether the accepting node is a consensus
	// node; a node whose subscription a consensus node accepts becomes a
	// relayer (Alg. 1 line 16).
	FromConsensus bool
}

var _ wire.Message = (*AcceptSubscribe)(nil)

// Type implements wire.Message.
func (m *AcceptSubscribe) Type() wire.Type { return TypeAcceptSubscribe }

// WireSize implements wire.Message.
func (m *AcceptSubscribe) WireSize() int { return wire.FrameOverhead + 4 + len(m.Stripes) + 1 }

// EncodeBody implements wire.Message.
func (m *AcceptSubscribe) EncodeBody(e *wire.Encoder) {
	encodeStripeList(e, m.Stripes)
	e.Bool(m.FromConsensus)
}

func decodeAcceptSubscribe(d *wire.Decoder) (wire.Message, error) {
	m := &AcceptSubscribe{Stripes: decodeStripeList(d), FromConsensus: d.Bool()}
	return m, d.Err()
}

// RejectSubscribe declines a subscription; Children lists alternative
// nodes the requester may subscribe to instead (§IV-D).
type RejectSubscribe struct {
	Stripes  []uint8
	Children []wire.NodeID
}

var _ wire.Message = (*RejectSubscribe)(nil)

// Type implements wire.Message.
func (m *RejectSubscribe) Type() wire.Type { return TypeRejectSubscribe }

// WireSize implements wire.Message.
func (m *RejectSubscribe) WireSize() int {
	return wire.FrameOverhead + 4 + len(m.Stripes) + wire.SizeNodeSlice(m.Children)
}

// EncodeBody implements wire.Message.
func (m *RejectSubscribe) EncodeBody(e *wire.Encoder) {
	encodeStripeList(e, m.Stripes)
	e.NodeSlice(m.Children)
}

func decodeRejectSubscribe(d *wire.Decoder) (wire.Message, error) {
	m := &RejectSubscribe{Stripes: decodeStripeList(d), Children: d.NodeSlice()}
	return m, d.Err()
}

// Unsubscribe cancels stripe subscriptions.
type Unsubscribe struct {
	Stripes []uint8
}

var _ wire.Message = (*Unsubscribe)(nil)

// Type implements wire.Message.
func (m *Unsubscribe) Type() wire.Type { return TypeUnsubscribe }

// WireSize implements wire.Message.
func (m *Unsubscribe) WireSize() int { return wire.FrameOverhead + 4 + len(m.Stripes) }

// EncodeBody implements wire.Message.
func (m *Unsubscribe) EncodeBody(e *wire.Encoder) { encodeStripeList(e, m.Stripes) }

func decodeUnsubscribe(d *wire.Decoder) (wire.Message, error) {
	m := &Unsubscribe{Stripes: decodeStripeList(d)}
	return m, d.Err()
}

// RelayerAlive advertises a relayer and the stripes it relays (Alg. 2). An
// empty stripe list announces demotion to an ordinary node. Version is a
// per-origin monotonic counter: receivers ignore (and do not re-forward)
// announcements older than what they already hold, which keeps the
// forwarding in Alg. 2 line 20 from circulating conflicting copies
// forever.
type RelayerAlive struct {
	Relayer wire.NodeID
	JoinSeq uint64 // network join order (paper: registration order on chain)
	Version uint64
	Stripes []uint8
	Zone    uint32
}

var _ wire.Message = (*RelayerAlive)(nil)

// Type implements wire.Message.
func (m *RelayerAlive) Type() wire.Type { return TypeRelayerAlive }

// WireSize implements wire.Message.
func (m *RelayerAlive) WireSize() int {
	return wire.FrameOverhead + 4 + 8 + 8 + 4 + len(m.Stripes) + 4
}

// EncodeBody implements wire.Message.
func (m *RelayerAlive) EncodeBody(e *wire.Encoder) {
	e.Node(m.Relayer)
	e.U64(m.JoinSeq)
	e.U64(m.Version)
	encodeStripeList(e, m.Stripes)
	e.U32(m.Zone)
}

func decodeRelayerAlive(d *wire.Decoder) (wire.Message, error) {
	m := &RelayerAlive{
		Relayer: d.Node(), JoinSeq: d.U64(), Version: d.U64(),
		Stripes: decodeStripeList(d), Zone: d.U32(),
	}
	return m, d.Err()
}

// Leave announces departure (§IV-E).
type Leave struct {
	IsRelayer bool
}

var _ wire.Message = (*Leave)(nil)

// Type implements wire.Message.
func (m *Leave) Type() wire.Type { return TypeLeave }

// WireSize implements wire.Message.
func (m *Leave) WireSize() int { return wire.FrameOverhead + 1 }

// EncodeBody implements wire.Message.
func (m *Leave) EncodeBody(e *wire.Encoder) { e.Bool(m.IsRelayer) }

func decodeLeave(d *wire.Decoder) (wire.Message, error) {
	return &Leave{IsRelayer: d.Bool()}, d.Err()
}

// Heartbeat proves liveness to neighbors (§IV-E).
type Heartbeat struct{}

var _ wire.Message = (*Heartbeat)(nil)

// Type implements wire.Message.
func (m *Heartbeat) Type() wire.Type { return TypeHeartbeat }

// WireSize implements wire.Message.
func (m *Heartbeat) WireSize() int { return wire.FrameOverhead }

// EncodeBody implements wire.Message.
func (m *Heartbeat) EncodeBody(e *wire.Encoder) {}

func decodeHeartbeat(d *wire.Decoder) (wire.Message, error) { return &Heartbeat{}, nil }

// ZoneBlock carries a Predis block through the relayer tree.
type ZoneBlock struct {
	Block *core.PredisBlock
}

var _ wire.Message = (*ZoneBlock)(nil)

// Type implements wire.Message.
func (m *ZoneBlock) Type() wire.Type { return TypeZoneBlock }

// WireSize implements wire.Message.
func (m *ZoneBlock) WireSize() int {
	// Same body as the inner block, under this message's own frame.
	return m.Block.WireSize()
}

// EncodeBody implements wire.Message.
func (m *ZoneBlock) EncodeBody(e *wire.Encoder) { m.Block.EncodeBody(e) }

func decodeZoneBlock(d *wire.Decoder) (wire.Message, error) {
	blk, err := core.DecodePredisBlockBody(d)
	if err != nil {
		return nil, err
	}
	return &ZoneBlock{Block: blk}, nil
}

// BlockDigest synchronizes ledger state over backup connections to
// neighbor zones (§IV-F): it lists the sender's latest block height and
// bundle tips so receivers can pull what they miss.
type BlockDigest struct {
	Height uint64
	Tips   []uint64
}

var _ wire.Message = (*BlockDigest)(nil)

// Type implements wire.Message.
func (m *BlockDigest) Type() wire.Type { return TypeBlockDigest }

// WireSize implements wire.Message.
func (m *BlockDigest) WireSize() int { return wire.FrameOverhead + 8 + wire.SizeU64Slice(m.Tips) }

// EncodeBody implements wire.Message.
func (m *BlockDigest) EncodeBody(e *wire.Encoder) {
	e.U64(m.Height)
	e.U64Slice(m.Tips)
}

func decodeBlockDigest(d *wire.Decoder) (wire.Message, error) {
	m := &BlockDigest{Height: d.U64(), Tips: d.U64Slice()}
	return m, d.Err()
}

// GetRelayers asks a neighbor for the zone's current relayer set (Alg. 1
// line 1).
type GetRelayers struct {
	Zone uint32
}

var _ wire.Message = (*GetRelayers)(nil)

// Type implements wire.Message.
func (m *GetRelayers) Type() wire.Type { return TypeGetRelayers }

// WireSize implements wire.Message.
func (m *GetRelayers) WireSize() int { return wire.FrameOverhead + 4 }

// EncodeBody implements wire.Message.
func (m *GetRelayers) EncodeBody(e *wire.Encoder) { e.U32(m.Zone) }

func decodeGetRelayers(d *wire.Decoder) (wire.Message, error) {
	return &GetRelayers{Zone: d.U32()}, d.Err()
}

// RelayersInfo answers GetRelayers: the known relayers of a zone with the
// stripes each relays.
type RelayersInfo struct {
	Zone     uint32
	Relayers []RelayerEntry
}

// RelayerEntry describes one relayer.
type RelayerEntry struct {
	Node    wire.NodeID
	JoinSeq uint64
	Stripes []uint8
}

var _ wire.Message = (*RelayersInfo)(nil)

// Type implements wire.Message.
func (m *RelayersInfo) Type() wire.Type { return TypeRelayersInfo }

// WireSize implements wire.Message.
func (m *RelayersInfo) WireSize() int {
	n := wire.FrameOverhead + 4 + 4
	for _, r := range m.Relayers {
		n += 4 + 8 + 4 + len(r.Stripes)
	}
	return n
}

// EncodeBody implements wire.Message.
func (m *RelayersInfo) EncodeBody(e *wire.Encoder) {
	e.U32(m.Zone)
	e.U32(uint32(len(m.Relayers)))
	for _, r := range m.Relayers {
		e.Node(r.Node)
		e.U64(r.JoinSeq)
		encodeStripeList(e, r.Stripes)
	}
}

func decodeRelayersInfo(d *wire.Decoder) (wire.Message, error) {
	m := &RelayersInfo{Zone: d.U32()}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining() {
		return nil, wire.ErrTruncated
	}
	for i := 0; i < n; i++ {
		m.Relayers = append(m.Relayers, RelayerEntry{
			Node: d.Node(), JoinSeq: d.U64(), Stripes: decodeStripeList(d),
		})
	}
	return m, d.Err()
}

// BlockRequest asks a zone/backup peer for completed Predis blocks above
// the sender's chain head. Full nodes use it to catch up after a restart
// (and to close gaps a digest reveals): peers answer from their retained
// recent-block window.
type BlockRequest struct {
	Height uint64 // requester's last completed height
}

var _ wire.Message = (*BlockRequest)(nil)

// Type implements wire.Message.
func (m *BlockRequest) Type() wire.Type { return TypeBlockRequest }

// WireSize implements wire.Message.
func (m *BlockRequest) WireSize() int { return wire.FrameOverhead + 8 }

// EncodeBody implements wire.Message.
func (m *BlockRequest) EncodeBody(e *wire.Encoder) { e.U64(m.Height) }

func decodeBlockRequest(d *wire.Decoder) (wire.Message, error) {
	return &BlockRequest{Height: d.U64()}, d.Err()
}

// BlockResponse answers BlockRequest with a contiguous run of completed
// blocks starting just above the requested height, plus the responder's
// own head. When the requester is so far behind that the bundles its
// missing blocks reference have been pruned network-wide (§III-D), the
// responder instead picks a recent Anchor block whose bundle suffix it
// can still fully serve: the requester fast-forwards its chains to the
// anchor's cut heights and replays only from there (snapshot-style sync;
// the skipped history stays available from archival ledgers only).
type BlockResponse struct {
	Head   uint64
	Anchor *core.PredisBlock // nil unless a skip-sync is needed
	Blocks []*core.PredisBlock
}

var _ wire.Message = (*BlockResponse)(nil)

// Type implements wire.Message.
func (m *BlockResponse) Type() wire.Type { return TypeBlockResponse }

// WireSize implements wire.Message.
func (m *BlockResponse) WireSize() int {
	// Embedded blocks are encoded body-only (EncodeBody), so their own
	// frame overhead must not be counted — the simulator charges exactly
	// WireSize bytes of bandwidth, and the catch-up path would otherwise
	// be billed 6 spurious bytes per block (caught by wiresym's round-trip
	// coverage requirement).
	n := wire.FrameOverhead + 8 + 1 + 4
	if m.Anchor != nil {
		n += m.Anchor.WireSize() - wire.FrameOverhead
	}
	for _, b := range m.Blocks {
		n += b.WireSize() - wire.FrameOverhead
	}
	return n
}

// EncodeBody implements wire.Message.
func (m *BlockResponse) EncodeBody(e *wire.Encoder) {
	e.U64(m.Head)
	e.Bool(m.Anchor != nil)
	if m.Anchor != nil {
		m.Anchor.EncodeBody(e)
	}
	e.U32(uint32(len(m.Blocks)))
	for _, b := range m.Blocks {
		b.EncodeBody(e)
	}
}

func decodeBlockResponse(d *wire.Decoder) (wire.Message, error) {
	m := &BlockResponse{Head: d.U64()}
	if d.Bool() {
		anchor, err := core.DecodePredisBlockBody(d)
		if err != nil {
			return nil, err
		}
		m.Anchor = anchor
	}
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > d.Remaining() {
		return nil, wire.ErrTruncated
	}
	for i := 0; i < n; i++ {
		blk, err := core.DecodePredisBlockBody(d)
		if err != nil {
			return nil, err
		}
		m.Blocks = append(m.Blocks, blk)
	}
	return m, d.Err()
}

// ZoneSpec pushes a *proposed* Predis block to full nodes before the
// consensus decision (streaming commit). Receivers buffer it
// speculatively — verifying the leader signature and pre-fetching the
// bundles its cuts reference — and finalize only when the matching
// ordered ZoneBlock arrives. A ZoneSpecDiscard (or a committed block
// with a different hash at the same height) retracts it.
type ZoneSpec struct {
	Block *core.PredisBlock
}

var _ wire.Message = (*ZoneSpec)(nil)

// Type implements wire.Message.
func (m *ZoneSpec) Type() wire.Type { return TypeSpec }

// WireSize implements wire.Message.
func (m *ZoneSpec) WireSize() int {
	// Same body as the inner block, under this message's own frame.
	return m.Block.WireSize()
}

// EncodeBody implements wire.Message.
func (m *ZoneSpec) EncodeBody(e *wire.Encoder) { m.Block.EncodeBody(e) }

func decodeZoneSpec(d *wire.Decoder) (wire.Message, error) {
	blk, err := core.DecodePredisBlockBody(d)
	if err != nil {
		return nil, err
	}
	return &ZoneSpec{Block: blk}, nil
}

// ZoneSpecDiscard retracts a previously pushed ZoneSpec: the consensus
// engine evicted the proposal (view change or fork loss), so full nodes
// must drop the buffered speculative block. The block is re-distributed
// via a fresh ZoneSpec if it is later proposed again.
type ZoneSpecDiscard struct {
	Height uint64
	Hash   crypto.Hash
}

var _ wire.Message = (*ZoneSpecDiscard)(nil)

// Type implements wire.Message.
func (m *ZoneSpecDiscard) Type() wire.Type { return TypeSpecDiscard }

// WireSize implements wire.Message.
func (m *ZoneSpecDiscard) WireSize() int { return wire.FrameOverhead + 8 + crypto.HashSize }

// EncodeBody implements wire.Message.
func (m *ZoneSpecDiscard) EncodeBody(e *wire.Encoder) {
	e.U64(m.Height)
	e.Bytes32(m.Hash)
}

func decodeZoneSpecDiscard(d *wire.Decoder) (wire.Message, error) {
	return &ZoneSpecDiscard{Height: d.U64(), Hash: d.Bytes32()}, d.Err()
}

var registerOnce sync.Once

// RegisterMessages registers Multi-Zone message types; idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeStripe, "zone.stripe", decodeStripe)
		wire.Register(TypeSubscribe, "zone.subscribe", decodeSubscribe)
		wire.Register(TypeAcceptSubscribe, "zone.accept_sub", decodeAcceptSubscribe)
		wire.Register(TypeRejectSubscribe, "zone.reject_sub", decodeRejectSubscribe)
		wire.Register(TypeUnsubscribe, "zone.unsubscribe", decodeUnsubscribe)
		wire.Register(TypeRelayerAlive, "zone.relayer_alive", decodeRelayerAlive)
		wire.Register(TypeLeave, "zone.leave", decodeLeave)
		wire.Register(TypeHeartbeat, "zone.heartbeat", decodeHeartbeat)
		wire.Register(TypeZoneBlock, "zone.block", decodeZoneBlock)
		wire.Register(TypeBlockDigest, "zone.block_digest", decodeBlockDigest)
		wire.Register(TypeGetRelayers, "zone.get_relayers", decodeGetRelayers)
		wire.Register(TypeRelayersInfo, "zone.relayers_info", decodeRelayersInfo)
		wire.Register(TypeBlockRequest, "zone.block_request", decodeBlockRequest)
		wire.Register(TypeBlockResponse, "zone.block_response", decodeBlockResponse)
		wire.Register(TypeSpec, "zone.spec", decodeZoneSpec)
		wire.Register(TypeSpecDiscard, "zone.spec_discard", decodeZoneSpecDiscard)
	})
}
