package multizone

import (
	"testing"
	"testing/quick"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/types"
	"predis/internal/wire"
)

func mkTxs(n int, base uint64) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = types.NewTransaction(7, base+uint64(i), 512, time.Duration(i))
	}
	return out
}

func TestNewStriperValidation(t *testing.T) {
	if _, err := NewStriper(0, 0); err == nil {
		t.Fatal("nc=0 accepted")
	}
	if _, err := NewStriper(4, 4); err == nil {
		t.Fatal("f=nc accepted")
	}
	s, err := NewStriper(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NC() != 8 || s.MinStripes() != 6 {
		t.Fatalf("NC=%d MinStripes=%d", s.NC(), s.MinStripes())
	}
}

func TestStripeRoundtripAllLossPatterns(t *testing.T) {
	s, err := NewStriper(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	suite := crypto.NewSimSuite(4, 77)
	txs := mkTxs(50, 0)
	set, err := s.Encode(txs)
	if err != nil {
		t.Fatal(err)
	}
	b := core.PackBundleStriped(suite.Signer(0), 0, nil, txs, make(core.TipList, 4), set.Root)

	all := make([]*StripeMsg, 4)
	for i := 0; i < 4; i++ {
		m, err := set.Stripe(b.Header, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.VerifyStripe(m); err != nil {
			t.Fatalf("stripe %d failed verification: %v", i, err)
		}
		all[i] = m
	}
	// Every single-loss pattern reconstructs (n_c−f = 3 of 4).
	for drop := 0; drop < 4; drop++ {
		stripes := make([]*StripeMsg, 4)
		copy(stripes, all)
		stripes[drop] = nil
		got, err := s.Reassemble(b.Header, stripes)
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		if got.Header.Hash() != b.Header.Hash() {
			t.Fatalf("drop %d: header changed", drop)
		}
		if len(got.Txs) != 50 || got.Txs[13].Hash() != txs[13].Hash() {
			t.Fatalf("drop %d: body corrupted", drop)
		}
	}
	// Two losses cannot reconstruct.
	stripes := make([]*StripeMsg, 4)
	copy(stripes, all)
	stripes[0], stripes[1] = nil, nil
	if _, err := s.Reassemble(b.Header, stripes); err == nil {
		t.Fatal("reconstructed from too few stripes")
	}
}

func TestVerifyStripeRejectsTampering(t *testing.T) {
	s, _ := NewStriper(4, 1)
	suite := crypto.NewSimSuite(4, 78)
	txs := mkTxs(10, 0)
	set, _ := s.Encode(txs)
	b := core.PackBundleStriped(suite.Signer(0), 0, nil, txs, make(core.TipList, 4), set.Root)
	m, _ := set.Stripe(b.Header, 2)

	tampered := *m
	tampered.Shard = append([]byte(nil), m.Shard...)
	tampered.Shard[0] ^= 1
	if err := s.VerifyStripe(&tampered); err == nil {
		t.Fatal("tampered shard accepted")
	}
	wrongIdx := *m
	wrongIdx.Index = 3
	if err := s.VerifyStripe(&wrongIdx); err == nil {
		t.Fatal("stripe with wrong index accepted")
	}
	oob := *m
	oob.Index = 9
	if err := s.VerifyStripe(&oob); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestStripeRootHookMatchesEncode(t *testing.T) {
	s, _ := NewStriper(4, 1)
	txs := mkTxs(5, 0)
	set, _ := s.Encode(txs)
	if got := s.StripeRootHook()(txs); got != set.Root {
		t.Fatal("StripeRootHook root differs from Encode")
	}
}

func TestStripeMsgCodec(t *testing.T) {
	RegisterMessages()
	core.RegisterMessages()
	s, _ := NewStriper(4, 1)
	suite := crypto.NewSimSuite(4, 79)
	txs := mkTxs(20, 0)
	set, _ := s.Encode(txs)
	b := core.PackBundleStriped(suite.Signer(1), 1, nil, txs, make(core.TipList, 4), set.Root)
	m, _ := set.Stripe(b.Header, 0)
	got, err := wire.Roundtrip(m)
	if err != nil {
		t.Fatal(err)
	}
	gm := got.(*StripeMsg)
	if err := s.VerifyStripe(gm); err != nil {
		t.Fatalf("stripe invalid after roundtrip: %v", err)
	}
	if len(wire.Marshal(m)) != m.WireSize() {
		t.Fatalf("StripeMsg WireSize %d vs %d", m.WireSize(), len(wire.Marshal(m)))
	}
}

func TestZoneMessageCodecs(t *testing.T) {
	RegisterMessages()
	core.RegisterMessages()
	suite := crypto.NewSimSuite(4, 80)
	blk := &core.PredisBlock{
		Height: 3, Leader: 1,
		Cuts: []core.Cut{{Height: 5, Head: crypto.HashBytes([]byte("h"))}, {}, {}, {}},
	}
	blk.Sig = suite.Signer(1).Sign(blk.Hash())

	msgs := []wire.Message{
		&Subscribe{Stripes: []uint8{0, 2}},
		&AcceptSubscribe{Stripes: []uint8{1}, FromConsensus: true},
		&RejectSubscribe{Stripes: []uint8{3}, Children: []wire.NodeID{9, 10}},
		&Unsubscribe{Stripes: []uint8{0}},
		&RelayerAlive{Relayer: 42, JoinSeq: 7, Stripes: []uint8{1, 2}, Zone: 3},
		&Leave{IsRelayer: true},
		&Heartbeat{},
		&ZoneBlock{Block: blk},
		&BlockDigest{Height: 9, Tips: []uint64{1, 2, 3, 4}},
		&GetRelayers{Zone: 2},
		&RelayersInfo{Zone: 2, Relayers: []RelayerEntry{{Node: 5, JoinSeq: 1, Stripes: []uint8{0}}}},
		&BlockRequest{Height: 4},
		&BlockResponse{Head: 9, Anchor: blk, Blocks: []*core.PredisBlock{blk}},
		&BlockResponse{Head: 9, Blocks: []*core.PredisBlock{blk}}, // catch-up without a skip-sync anchor
		&ZoneSpec{Block: blk},
		&ZoneSpecDiscard{Height: 3, Hash: blk.Hash()},
	}
	for _, m := range msgs {
		got, err := wire.Roundtrip(m)
		if err != nil {
			t.Fatalf("%s roundtrip: %v", wire.TypeName(m.Type()), err)
		}
		if len(wire.Marshal(m)) != m.WireSize() {
			t.Fatalf("%s WireSize mismatch: declared %d, marshaled %d",
				wire.TypeName(m.Type()), m.WireSize(), len(wire.Marshal(m)))
		}
		_ = got
	}

	// The block must survive the ZoneBlock embedding intact.
	got, _ := wire.Roundtrip(&ZoneBlock{Block: blk})
	gb := got.(*ZoneBlock).Block
	if gb.Hash() != blk.Hash() {
		t.Fatal("ZoneBlock changed the inner block hash")
	}
	if !suite.Signer(0).Verify(1, gb.Hash(), gb.Sig) {
		t.Fatal("inner block signature lost")
	}

	// Same for the speculative push, and field fidelity for its retraction.
	gotSpec, _ := wire.Roundtrip(&ZoneSpec{Block: blk})
	if gs := gotSpec.(*ZoneSpec).Block; gs.Hash() != blk.Hash() ||
		!suite.Signer(0).Verify(1, gs.Hash(), gs.Sig) {
		t.Fatal("ZoneSpec changed the inner block")
	}
	disc := &ZoneSpecDiscard{Height: 3, Hash: blk.Hash()}
	if got, err := wire.Roundtrip(disc); err != nil || *got.(*ZoneSpecDiscard) != *disc {
		t.Fatalf("ZoneSpecDiscard fidelity: got %+v err %v", got, err)
	}
}

func TestQuickStripeReassembly(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	suite := crypto.NewSimSuite(8, 81)
	f := func(txCountRaw, dropRaw uint8, seed uint64) bool {
		s, err := NewStriper(8, 2)
		if err != nil {
			return false
		}
		txs := mkTxs(1+int(txCountRaw)%60, seed)
		set, err := s.Encode(txs)
		if err != nil {
			return false
		}
		b := core.PackBundleStriped(suite.Signer(0), 0, nil, txs, make(core.TipList, 8), set.Root)
		stripes := make([]*StripeMsg, 8)
		for i := 0; i < 8; i++ {
			stripes[i], _ = set.Stripe(b.Header, i)
		}
		// Drop up to f=2 stripes.
		stripes[int(dropRaw)%8] = nil
		stripes[int(dropRaw/8)%8] = nil
		got, err := s.Reassemble(b.Header, stripes)
		if err != nil {
			return false
		}
		return got.Header.TxRoot == b.Header.TxRoot && len(got.Txs) == len(txs)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
