package multizone

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestEq3FailureProbability checks the paper's approximation p_c ≈ f/N.
func TestEq3FailureProbability(t *testing.T) {
	// 3% annual server failure rate, as the paper cites.
	const ph = 0.03
	cases := []struct{ f, n int }{{1, 4}, {2, 8}, {5, 16}, {33, 100}}
	for _, c := range cases {
		pc := FailureProbability(c.f, c.n, ph)
		approx := float64(c.f) / float64(c.n)
		if pc < approx || pc > approx+ph {
			t.Fatalf("f=%d n=%d: pc=%v not within [f/N, f/N+ph]", c.f, c.n, pc)
		}
	}
	if FailureProbability(1, 0, ph) != 1 {
		t.Fatal("degenerate N must fail closed")
	}
}

// TestEq4RelayerCount checks the paper's claim: with n_zr = n_c and
// n_c ≥ 4, a node receives data from relayers with probability > 99.98%.
func TestEq4RelayerCount(t *testing.T) {
	const ph = 0.03
	for _, nc := range []int{4, 8, 16} {
		f := (nc - 1) / 3
		// The paper's deployments (Figs. 7–8) have many more full nodes
		// than consensus nodes, so p_c ≈ f/N is small; we use N = 10·n_c.
		// (At the degenerate N = n_c, p_c ≈ 1/4 and Eq. 4's bound needs
		// more relayers than n_c — the 99.98% figure presumes N ≫ f.)
		pc := FailureProbability(f, 10*nc, ph)
		p := DeliveryProbability(pc, nc)
		if p <= 0.9998 {
			t.Fatalf("nc=%d: delivery probability %.6f ≤ 99.98%%", nc, p)
		}
	}
	// Eq. 4 solved for n_zr must satisfy its own bound.
	for _, pc := range []float64{0.1, 0.25, 0.33} {
		for _, pr := range []float64{1e-3, 2e-4} {
			const tol = 1 + 1e-9 // pc^nzr can exceed pr by float error alone
			nzr := RelayersForTarget(pc, pr)
			if loss := 1 - DeliveryProbability(pc, nzr); loss > pr*tol {
				t.Fatalf("pc=%v pr=%v: nzr=%d gives loss %v > pr", pc, pr, nzr, loss)
			}
			if nzr > 1 {
				if loss := 1 - DeliveryProbability(pc, nzr-1); loss <= pr/tol {
					t.Fatalf("pc=%v pr=%v: nzr=%d not minimal", pc, pr, nzr)
				}
			}
		}
	}
	if RelayersForTarget(1.0, 1e-3) < 1<<30 {
		t.Fatal("pc=1 must be unsatisfiable")
	}
	if RelayersForTarget(0.5, 1) != 1 {
		t.Fatal("pr=1 needs one relayer")
	}
}

// TestEq3Edges pins Eq. 3's boundary behaviour: with no malicious nodes
// the blend degenerates to the honest failure rate, with everyone
// malicious it saturates at certain failure, and an f beyond N (callers
// may pass the global fault bound against a small zone) clamps rather
// than extrapolating past 1.
func TestEq3Edges(t *testing.T) {
	const ph = 0.03
	if got := FailureProbability(0, 7, ph); got != ph {
		t.Fatalf("f=0: pc=%v, want ph=%v", got, ph)
	}
	if got := FailureProbability(7, 7, ph); got != 1 {
		t.Fatalf("f=N: pc=%v, want 1", got)
	}
	if got := FailureProbability(9, 7, ph); got != 1 {
		t.Fatalf("f>N must clamp: pc=%v, want 1", got)
	}
	if got := FailureProbability(0, 7, 0); got != 0 {
		t.Fatalf("f=0, ph=0: pc=%v, want 0", got)
	}
	if got := RelayersForTarget(0.25, 0); got != 1 {
		t.Fatalf("pr=0 is unreachable; want the 1-relayer floor, got %d", got)
	}
	if got := RelayersForTarget(0, 1e-3); got != 1 {
		t.Fatalf("pc=0 needs one relayer, got %d", got)
	}
}

// TestEq4EmpiricalCrossCheck verifies DeliveryProbability against a
// seeded Monte Carlo of the event it models: each of n_zr relayers fails
// independently with probability pc, and the stripe is delivered when at
// least one survives. 20k trials put 3σ under ±0.011 at the worst case,
// so a 0.02 tolerance separates a correct formula from an off-by-one in
// the exponent (pc^(nzr±1) differs by ≥ 0.09 on every row).
func TestEq4EmpiricalCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 20_000
	cases := []struct {
		pc  float64
		nzr int
	}{
		{0, 1}, {0, 3},
		{0.125, 1}, {0.125, 2},
		{0.25, 1}, {0.25, 2}, {0.25, 4},
		{0.5, 1}, {0.5, 2}, {0.5, 3},
		{1, 2},
	}
	for _, c := range cases {
		delivered := 0
		for i := 0; i < trials; i++ {
			for r := 0; r < c.nzr; r++ {
				if rng.Float64() >= c.pc {
					delivered++
					break
				}
			}
		}
		got := float64(delivered) / trials
		want := DeliveryProbability(c.pc, c.nzr)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("pc=%v nzr=%d: measured %.4f, Eq. 4 predicts %.4f",
				c.pc, c.nzr, got, want)
		}
	}
}

// TestDeliveryProbabilityBounds sanity-checks the complement of Eq. 4.
func TestDeliveryProbabilityBounds(t *testing.T) {
	if DeliveryProbability(0.5, 0) != 0 {
		t.Fatal("zero relayers deliver nothing")
	}
	if DeliveryProbability(0, 3) != 1 {
		t.Fatal("pc=0 must always deliver")
	}
	if DeliveryProbability(1, 3) != 0 {
		t.Fatal("pc=1 must never deliver")
	}
	if got := DeliveryProbability(0.25, 4); got <= 0.99 || got >= 1 {
		t.Fatalf("DeliveryProbability(0.25, 4) = %v", got)
	}
}

// TestStripesSurviveMessageLoss runs the full Multi-Zone stack with 2%
// random message loss applied to every message: erasure parity (any
// n_c−f of n_c stripes), digest pulls, and consensus retransmission via
// heartbeat traffic must still complete blocks everywhere.
func TestStripesSurviveMessageLoss(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 2, perZone: 5,
		rate: 300, duration: 10 * time.Second,
		loss: 0.02,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(cfg.duration)
	if zc.net.Lost() == 0 {
		t.Fatal("loss model dropped nothing; test misconfigured")
	}
	for _, fn := range zc.fulls {
		if _, _, blocks := fn.Stats(); blocks == 0 {
			t.Fatalf("node %d completed no blocks under 2%% loss", fn.cfg.Self)
		}
	}
	t.Logf("lost %d messages; all %d full nodes still completed blocks",
		zc.net.Lost(), len(zc.fulls))
}
