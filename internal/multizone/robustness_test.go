package multizone

import (
	"testing"
	"time"
)

// TestEq3FailureProbability checks the paper's approximation p_c ≈ f/N.
func TestEq3FailureProbability(t *testing.T) {
	// 3% annual server failure rate, as the paper cites.
	const ph = 0.03
	cases := []struct{ f, n int }{{1, 4}, {2, 8}, {5, 16}, {33, 100}}
	for _, c := range cases {
		pc := FailureProbability(c.f, c.n, ph)
		approx := float64(c.f) / float64(c.n)
		if pc < approx || pc > approx+ph {
			t.Fatalf("f=%d n=%d: pc=%v not within [f/N, f/N+ph]", c.f, c.n, pc)
		}
	}
	if FailureProbability(1, 0, ph) != 1 {
		t.Fatal("degenerate N must fail closed")
	}
}

// TestEq4RelayerCount checks the paper's claim: with n_zr = n_c and
// n_c ≥ 4, a node receives data from relayers with probability > 99.98%.
func TestEq4RelayerCount(t *testing.T) {
	const ph = 0.03
	for _, nc := range []int{4, 8, 16} {
		f := (nc - 1) / 3
		// The paper's deployments (Figs. 7–8) have many more full nodes
		// than consensus nodes, so p_c ≈ f/N is small; we use N = 10·n_c.
		// (At the degenerate N = n_c, p_c ≈ 1/4 and Eq. 4's bound needs
		// more relayers than n_c — the 99.98% figure presumes N ≫ f.)
		pc := FailureProbability(f, 10*nc, ph)
		p := DeliveryProbability(pc, nc)
		if p <= 0.9998 {
			t.Fatalf("nc=%d: delivery probability %.6f ≤ 99.98%%", nc, p)
		}
	}
	// Eq. 4 solved for n_zr must satisfy its own bound.
	for _, pc := range []float64{0.1, 0.25, 0.33} {
		for _, pr := range []float64{1e-3, 2e-4} {
			const tol = 1 + 1e-9 // pc^nzr can exceed pr by float error alone
			nzr := RelayersForTarget(pc, pr)
			if loss := 1 - DeliveryProbability(pc, nzr); loss > pr*tol {
				t.Fatalf("pc=%v pr=%v: nzr=%d gives loss %v > pr", pc, pr, nzr, loss)
			}
			if nzr > 1 {
				if loss := 1 - DeliveryProbability(pc, nzr-1); loss <= pr/tol {
					t.Fatalf("pc=%v pr=%v: nzr=%d not minimal", pc, pr, nzr)
				}
			}
		}
	}
	if RelayersForTarget(1.0, 1e-3) < 1<<30 {
		t.Fatal("pc=1 must be unsatisfiable")
	}
	if RelayersForTarget(0.5, 1) != 1 {
		t.Fatal("pr=1 needs one relayer")
	}
}

// TestDeliveryProbabilityBounds sanity-checks the complement of Eq. 4.
func TestDeliveryProbabilityBounds(t *testing.T) {
	if DeliveryProbability(0.5, 0) != 0 {
		t.Fatal("zero relayers deliver nothing")
	}
	if DeliveryProbability(0, 3) != 1 {
		t.Fatal("pc=0 must always deliver")
	}
	if DeliveryProbability(1, 3) != 0 {
		t.Fatal("pc=1 must never deliver")
	}
	if got := DeliveryProbability(0.25, 4); got <= 0.99 || got >= 1 {
		t.Fatalf("DeliveryProbability(0.25, 4) = %v", got)
	}
}

// TestStripesSurviveMessageLoss runs the full Multi-Zone stack with 2%
// random message loss applied to every message: erasure parity (any
// n_c−f of n_c stripes), digest pulls, and consensus retransmission via
// heartbeat traffic must still complete blocks everywhere.
func TestStripesSurviveMessageLoss(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 2, perZone: 5,
		rate: 300, duration: 10 * time.Second,
		loss: 0.02,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(cfg.duration)
	if zc.net.Lost() == 0 {
		t.Fatal("loss model dropped nothing; test misconfigured")
	}
	for _, fn := range zc.fulls {
		if _, _, blocks := fn.Stats(); blocks == 0 {
			t.Fatalf("node %d completed no blocks under 2%% loss", fn.cfg.Self)
		}
	}
	t.Logf("lost %d messages; all %d full nodes still completed blocks",
		zc.net.Lost(), len(zc.fulls))
}
