package multizone

import (
	"time"

	"predis/internal/env"
	"predis/internal/wire"
)

// Delayed wraps a handler that joins the network after a delay, modeling
// incremental network growth (§IV-C: nodes register and join one after
// another, and the subscription protocol of Fig. 3 assumes ordered joins).
// Messages arriving before the inner handler started are dropped, exactly
// as a not-yet-listening process would drop them.
type Delayed struct {
	Inner env.Handler
	Delay time.Duration

	ctx     env.Context
	started bool
}

var _ env.Handler = (*Delayed)(nil)
var _ env.Restartable = (*Delayed)(nil)

// Start implements env.Handler.
func (d *Delayed) Start(ctx env.Context) {
	d.ctx = ctx
	ctx.After(d.Delay, func() {
		d.started = true
		d.Inner.Start(ctx)
	})
}

// OnRestart implements env.Restartable. A node that crashed before its
// join time lost the pending join timer; re-arm the full join delay (it
// rejoins late, like a process rebooting mid-provisioning). A node that
// had already joined forwards the restart to the inner handler.
func (d *Delayed) OnRestart() {
	if !d.started {
		if d.ctx != nil {
			d.ctx.After(d.Delay, func() {
				if !d.started {
					d.started = true
					d.Inner.Start(d.ctx)
				}
			})
		}
		return
	}
	if r, ok := d.Inner.(env.Restartable); ok {
		r.OnRestart()
	}
}

// Receive implements env.Handler.
func (d *Delayed) Receive(from wire.NodeID, m wire.Message) {
	if d.started {
		d.Inner.Receive(from, m)
	}
}
