package multizone

import (
	"time"

	"predis/internal/env"
	"predis/internal/wire"
)

// Delayed wraps a handler that joins the network after a delay, modeling
// incremental network growth (§IV-C: nodes register and join one after
// another, and the subscription protocol of Fig. 3 assumes ordered joins).
// Messages arriving before the inner handler started are dropped, exactly
// as a not-yet-listening process would drop them.
type Delayed struct {
	Inner env.Handler
	Delay time.Duration

	started bool
}

var _ env.Handler = (*Delayed)(nil)

// Start implements env.Handler.
func (d *Delayed) Start(ctx env.Context) {
	ctx.After(d.Delay, func() {
		d.started = true
		d.Inner.Start(ctx)
	})
}

// Receive implements env.Handler.
func (d *Delayed) Receive(from wire.NodeID, m wire.Message) {
	if d.started {
		d.Inner.Receive(from, m)
	}
}
