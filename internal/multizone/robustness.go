package multizone

import "math"

// This file implements §IV-B's robustness analysis. The paper treats
// malicious behaviour in the network layer as node failure: an honest
// node fails with probability p_h (~3%/year per server-failure studies),
// a malicious node "fails" with probability p_b = 1, and with at most f
// malicious among N full nodes the blended per-node failure probability
// is Eq. 3:
//
//	p_c = (f/N)·p_b + (1 − f/N)·p_h ≈ f/N.
//
// A zone with n_zr relayers loses a stripe only if every relayer carrying
// it fails, so the stripe-loss probability is p_c^n_zr, and Eq. 4 picks
// n_zr such that p_c^n_zr ≤ p_r. With the paper's choice n_zr = n_c and
// n_c ≥ 4, delivery probability exceeds 99.98%.

// FailureProbability is Eq. 3: the blended per-node failure probability
// given f malicious nodes among N total and honest failure rate ph.
func FailureProbability(f, n int, ph float64) float64 {
	if n <= 0 {
		return 1
	}
	frac := float64(f) / float64(n)
	if frac > 1 {
		frac = 1
	}
	return frac*1.0 + (1-frac)*ph
}

// DeliveryProbability returns the probability that a node can obtain a
// stripe from at least one of nzr relayers when each fails independently
// with probability pc (the complement of Eq. 4's left side).
func DeliveryProbability(pc float64, nzr int) float64 {
	if nzr <= 0 {
		return 0
	}
	if pc < 0 {
		pc = 0
	}
	if pc > 1 {
		pc = 1
	}
	return 1 - math.Pow(pc, float64(nzr))
}

// RelayersForTarget is Eq. 4 solved for n_zr: the minimum number of
// relayers per zone so that the stripe-loss probability pc^n_zr stays at
// or below the robustness threshold pr.
func RelayersForTarget(pc, pr float64) int {
	if pr <= 0 || pc <= 0 {
		return 1
	}
	if pc >= 1 {
		return math.MaxInt32 // unsatisfiable: every relayer always fails
	}
	if pr >= 1 {
		return 1
	}
	n := int(math.Ceil(math.Log(pr) / math.Log(pc)))
	if n < 1 {
		n = 1
	}
	return n
}
