package multizone

import (
	"sort"
	"time"

	"predis/internal/compute"
	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/obs"
	"predis/internal/types"
	"predis/internal/wire"
)

// Distributor is the consensus-node side of Multi-Zone (§IV-D): consensus
// node i erasure-codes every bundle it stores (its own and its peers') and
// sends stripe i to its subscribers — the relayers across all zones — and
// pushes each new Predis block to the same subscribers. Consensus
// bandwidth spent on full-node distribution is therefore one stripe per
// bundle plus one tiny block header per block, independent of the number
// of full nodes.
type Distributor struct {
	self    wire.NodeID
	nc      int
	striper *Striper
	ctx     env.Context

	subscribers map[wire.NodeID]bool
	lastSeen    map[wire.NodeID]time.Time
	// subsSorted memoizes the ascending-ID view of subscribers so the
	// per-bundle and per-block fan-outs do not re-sort an unchanged set;
	// any mutation of subscribers nils it (see subsChanged).
	subsSorted []wire.NodeID
	maxSubs    int
	// ttl expires subscribers that stopped heartbeating (0 disables); a
	// crashed relayer would otherwise receive stripes forever.
	ttl time.Duration

	// trace, when non-nil, anchors the stripe_distributed and
	// fullnode_delivered lifecycle stages at fan-out time (full nodes close
	// the spans on arrival/completion). Nil disables tracing at zero cost.
	trace *obs.Tracer

	// cache avoids encoding the same bundle twice (StripeRoot hook +
	// dissemination).
	cacheKey crypto.Hash
	cacheSet *StripeSet

	// spec tracks speculative block pushes (streaming commit), keyed by
	// block hash. An entry exists once the block has been pushed via
	// ZoneSpec; discarded flips when the proposal was evicted and a
	// ZoneSpecDiscard retracted it. A later re-proposal of the same block
	// (discarded entry) is pushed again — exactly once per discard — so
	// full nodes that dropped the buffer recover the latency win.
	// Committed heights prune their entries in OnBlockCommit.
	spec map[crypto.Hash]*specState

	// stats
	stripesOut uint64
	blocksOut  uint64
	specOut    uint64
	discardOut uint64
	// unexpected counts non-zone-plane messages reaching the distributor.
	// Stripes only flow outward here, so a Byzantine peer cannot corrupt
	// consensus-side state — unexpected traffic is counted and ignored.
	unexpected uint64
}

// NewDistributor builds a distributor for consensus node self.
func NewDistributor(self wire.NodeID, nc int, striper *Striper, maxSubs int) *Distributor {
	if maxSubs <= 0 {
		maxSubs = 1 << 30 // consensus nodes accept every relayer by default
	}
	return &Distributor{
		self:        self,
		nc:          nc,
		striper:     striper,
		subscribers: make(map[wire.NodeID]bool),
		lastSeen:    make(map[wire.NodeID]time.Time),
		maxSubs:     maxSubs,
		spec:        make(map[crypto.Hash]*specState),
	}
}

// specState is the speculative-push state of one proposed block.
type specState struct {
	height    uint64
	discarded bool
}

// SetSubscriberTTL arms subscriber expiry: a subscriber not heard from for
// ttl (heartbeats count) is dropped before the next stripe/block fan-out.
// Zero disables expiry.
func (d *Distributor) SetSubscriberTTL(ttl time.Duration) { d.ttl = ttl }

// SetTrace arms lifecycle tracing (nil disables it).
func (d *Distributor) SetTrace(tr *obs.Tracer) { d.trace = tr }

// Start records the runtime context (call from the host's Start) and
// hands the runtime's compute pool to the striper.
func (d *Distributor) Start(ctx env.Context) {
	d.ctx = ctx
	d.striper.SetPool(compute.PoolOf(ctx))
}

// Subscribers returns the current subscriber count.
func (d *Distributor) Subscribers() int { return len(d.subscribers) }

// Stats returns (stripes sent, blocks sent).
func (d *Distributor) Stats() (stripes, blocks uint64) { return d.stripesOut, d.blocksOut }

// SpecStats returns (speculative block pushes, discards sent).
func (d *Distributor) SpecStats() (specs, discards uint64) { return d.specOut, d.discardOut }

// Unexpected returns how many non-zone-plane messages reached this
// distributor (zero on benign runs).
func (d *Distributor) Unexpected() uint64 { return d.unexpected }

// StripeRoot implements core.Options.StripeRoot: encode the body, cache
// the shard set, and return the stripe Merkle root for the header.
func (d *Distributor) StripeRoot(txs []*types.Transaction) crypto.Hash {
	set, err := d.striper.Encode(txs)
	if err != nil {
		return crypto.ZeroHash
	}
	d.cacheKey = core.TxMerkleRoot(txs)
	d.cacheSet = set
	return set.Root
}

// OnBundleStored implements core's bundle hook: ship our stripe of every
// bundle that enters the mempool (own or peer-produced) to subscribers.
func (d *Distributor) OnBundleStored(b *core.Bundle) {
	if d.ctx == nil || len(d.subscribers) == 0 {
		return
	}
	// Resolve the stripe set: the bundle-attached cache first (another
	// consensus node already encoded this exact bundle — encoding is
	// deterministic in Txs, so the shards are identical), then the local
	// StripeRoot-hook cache, then a fresh encode.
	set, _ := b.StripeCache().(*StripeSet)
	if set == nil && d.cacheSet != nil && d.cacheKey == b.Header.TxRoot {
		set = d.cacheSet
	}
	if set == nil {
		var err error
		set, err = d.striper.Encode(b.Txs)
		if err != nil {
			d.ctx.Logf("multizone: encode bundle: %v", err)
			return
		}
	}
	b.SetStripeCache(set)
	d.cacheSet, d.cacheKey = nil, crypto.ZeroHash
	msg, err := set.Stripe(b.Header, int(d.self))
	if err != nil {
		d.ctx.Logf("multizone: stripe extract: %v", err)
		return
	}
	// Anchor the stripe_distributed stage at first fan-out (earliest mark
	// wins across consensus nodes); full nodes close the span when the
	// bundle enters their store.
	d.trace.Mark(obs.StageStripeDistributed,
		obs.BundleKey(b.Header.Producer, b.Header.Height), d.ctx.Now())
	for _, id := range d.liveSubscribers() {
		d.ctx.Send(id, msg)
		d.stripesOut++
	}
}

// OnBlockPropose implements the node's streaming-commit proposal hook:
// push the proposed block to subscribers speculatively, before the
// consensus decision, so full nodes can pre-fetch and pre-validate. The
// same block may be observed many times (every replica validates it,
// re-proposals after a view change revisit it); the spec map dedupes so
// each block is pushed once per proposal lifetime — and exactly once
// more after a discard retracted it.
func (d *Distributor) OnBlockPropose(blk *core.PredisBlock) {
	if d.ctx == nil {
		return
	}
	h := blk.Hash()
	if st, ok := d.spec[h]; ok && !st.discarded {
		return
	}
	d.spec[h] = &specState{height: blk.Height}
	// Anchor the spec_distributed stage at first speculative push
	// (earliest mark wins across consensus nodes); full nodes open the
	// span on arrival and close it when the ordered block finalizes the
	// buffer — or Discard it when the proposal is retracted.
	d.trace.Mark(obs.StageSpecDistributed, obs.BlockKey(blk.Height), d.ctx.Now())
	msg := &ZoneSpec{Block: blk}
	for _, id := range d.liveSubscribers() {
		d.ctx.Send(id, msg)
		d.specOut++
	}
}

// OnBlockEvict implements the node's streaming-commit eviction hook: the
// consensus engine abandoned the proposal (view change, fork loss), so
// retract the speculative push. Only blocks actually pushed — and not
// already retracted — produce a discard, so full nodes never see a
// discard for a block they were never sent.
func (d *Distributor) OnBlockEvict(blk *core.PredisBlock) {
	if d.ctx == nil {
		return
	}
	h := blk.Hash()
	st, ok := d.spec[h]
	if !ok || st.discarded {
		return
	}
	st.discarded = true
	msg := &ZoneSpecDiscard{Height: blk.Height, Hash: h}
	for _, id := range d.liveSubscribers() {
		d.ctx.Send(id, msg)
		d.discardOut++
	}
}

// OnBlockCommit pushes a committed Predis block to subscribers.
func (d *Distributor) OnBlockCommit(blk *core.PredisBlock) {
	if d.ctx == nil {
		return
	}
	// Speculative pushes at or below the committed height are settled:
	// full nodes resolve them against the ordered block, so the dedupe
	// entries can go.
	for h, st := range d.spec {
		if st.height <= blk.Height {
			delete(d.spec, h)
		}
	}
	msg := &ZoneBlock{Block: blk}
	// Anchor the fullnode_delivered stage at block push time; full nodes
	// close the span when they assemble the block's transactions.
	d.trace.Mark(obs.StageFullNodeDelivered,
		obs.BlockKey(blk.Height), d.ctx.Now())
	for _, id := range d.liveSubscribers() {
		d.ctx.Send(id, msg)
		d.blocksOut++
	}
}

// subsChanged invalidates the memoized sorted-subscriber view; every
// mutation of d.subscribers must call it.
func (d *Distributor) subsChanged() { d.subsSorted = nil }

// liveSubscribers expires stale subscribers (when a TTL is set) and
// returns the survivors in ascending ID order, so map iteration never
// affects wire traffic. The sorted view is memoized across calls: fan-out
// runs once per bundle and once per block, so rebuilding it only when the
// subscriber set actually changes removes an alloc+sort from the hot
// path. Callers must not retain or mutate the returned slice.
func (d *Distributor) liveSubscribers() []wire.NodeID {
	if d.ttl > 0 {
		now := d.ctx.Now()
		for id := range d.subscribers {
			if seen, ok := d.lastSeen[id]; ok && now.Sub(seen) > d.ttl {
				delete(d.subscribers, id)
				delete(d.lastSeen, id)
				d.subsChanged()
			}
		}
	}
	if d.subsSorted == nil {
		out := make([]wire.NodeID, 0, len(d.subscribers))
		for id := range d.subscribers {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		d.subsSorted = out
	}
	return d.subsSorted
}

// Receive handles zone-plane control messages addressed to the consensus
// node (subscribe/unsubscribe from relayers).
func (d *Distributor) Receive(from wire.NodeID, m wire.Message) {
	d.lastSeen[from] = d.ctx.Now()
	switch msg := m.(type) {
	case *Subscribe:
		d.onSubscribe(from, msg)
	case *Unsubscribe:
		delete(d.subscribers, from)
		d.subsChanged()
	case *Heartbeat:
		// Liveness only.
	default:
		// Consensus nodes ignore other zone-plane traffic.
		d.unexpected++
	}
}

func (d *Distributor) onSubscribe(from wire.NodeID, m *Subscribe) {
	// A consensus node serves exactly its own stripe index.
	serves := false
	for _, s := range m.Stripes {
		if wire.NodeID(s) == d.self {
			serves = true
			break
		}
	}
	if !serves {
		d.ctx.Send(from, &RejectSubscribe{Stripes: m.Stripes})
		return
	}
	if len(d.subscribers) >= d.maxSubs && !d.subscribers[from] {
		children := d.liveSubscribers()
		if len(children) > 4 {
			children = children[:4]
		}
		d.ctx.Send(from, &RejectSubscribe{Stripes: m.Stripes, Children: children})
		return
	}
	d.subscribers[from] = true
	d.subsChanged()
	d.ctx.Send(from, &AcceptSubscribe{
		Stripes:       []uint8{uint8(d.self)},
		FromConsensus: true,
	})
}
