package multizone

import (
	"testing"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/env"
	"predis/internal/ledger"
	"predis/internal/node"
	"predis/internal/simnet"
	"predis/internal/types"
	"predis/internal/wire"
	"predis/internal/workload"
)

// zoneCluster is a full Multi-Zone deployment in the simulator: consensus
// hosts running P-PBFT, plus zones of full nodes joining incrementally.
type zoneCluster struct {
	net       *simnet.Network
	hosts     []*ConsensusHost
	fulls     []*FullNode
	striper   *Striper
	collector *workload.Collector
	completed map[wire.NodeID][]uint64 // block heights completed per full node
	commits   int
}

type zoneConfig struct {
	nc, f       int
	zones       int
	perZone     int
	rate        float64
	duration    time.Duration
	maxSubs     int
	joinSpacing time.Duration
	loss        float64
	// stream enables streaming commit on the consensus hosts (speculative
	// proposed-block pushes plus PBFT pipelining).
	stream bool
	// starveRewire arms the opt-in withholding detector (see
	// FullNodeConfig.StarveRewireAfter); zero leaves it off, as in
	// production defaults.
	starveRewire int
}

func fullNodeID(zone, idx int) wire.NodeID {
	return wire.NodeID(100 + zone*100 + idx)
}

func buildZoneCluster(t testing.TB, cfg zoneConfig) *zoneCluster {
	t.Helper()
	node.RegisterAllMessages()
	RegisterMessages()
	if cfg.joinSpacing <= 0 {
		cfg.joinSpacing = 60 * time.Millisecond
	}
	striper, err := NewStriper(cfg.nc, cfg.f)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{
		Uplink:          simnet.Mbps100,
		Downlink:        simnet.Mbps100,
		Latency:         simnet.LANLatency(),
		Seed:            5,
		LossProbability: cfg.loss,
	})
	warm := simnet.Epoch.Add(cfg.duration / 4)
	end := simnet.Epoch.Add(cfg.duration)
	zc := &zoneCluster{
		net:       net,
		striper:   striper,
		collector: workload.NewCollector(warm, end),
		completed: make(map[wire.NodeID][]uint64),
	}
	suite := crypto.NewSimSuite(cfg.nc, 17)
	pipeline := 0
	if cfg.stream {
		pipeline = 4
	}
	for i := 0; i < cfg.nc; i++ {
		observer := i == 0
		host, err := NewConsensusHost(HostConfig{
			NC: cfg.nc, F: cfg.f, Self: wire.NodeID(i),
			Signer:         suite.Signer(i),
			Engine:         node.EnginePBFT,
			BundleSize:     50,
			BundleInterval: 20 * time.Millisecond,
			ViewTimeout:    2 * time.Second,
			Stream:         cfg.stream,
			Pipeline:       pipeline,
			Striper:        striper,
			OnCommit: func(height uint64, txs int) {
				if observer {
					zc.commits += txs
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		zc.hosts = append(zc.hosts, host)
		net.AddNode(wire.NodeID(i), host)
	}

	for z := 0; z < cfg.zones; z++ {
		var zonePeers []wire.NodeID
		for k := 0; k < cfg.perZone; k++ {
			zonePeers = append(zonePeers, fullNodeID(z, k))
		}
		for k := 0; k < cfg.perZone; k++ {
			self := fullNodeID(z, k)
			peers := make([]wire.NodeID, 0, cfg.perZone-1)
			for _, p := range zonePeers {
				if p != self {
					peers = append(peers, p)
				}
			}
			var backups []wire.NodeID
			if cfg.zones > 1 {
				backups = append(backups, fullNodeID((z+1)%cfg.zones, k%cfg.perZone))
			}
			fn, err := NewFullNode(FullNodeConfig{
				Self:              self,
				Zone:              z,
				JoinSeq:           uint64(z*cfg.perZone + k),
				NC:                cfg.nc,
				F:                 cfg.f,
				Striper:           striper,
				Signer:            suite.Signer(0),
				ZonePeers:         peers,
				BackupPeers:       backups,
				MaxSubscribers:    cfg.maxSubs,
				AliveInterval:     200 * time.Millisecond,
				StarveRewireAfter: cfg.starveRewire,
				DigestInterval:    time.Second,
				OnBlockComplete: func(blk *core.PredisBlock, txs int) {
					zc.completed[self] = append(zc.completed[self], blk.Height)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			zc.fulls = append(zc.fulls, fn)
			delay := time.Duration(z*cfg.perZone+k) * cfg.joinSpacing
			net.AddNode(self, &Delayed{Inner: fn, Delay: delay})
		}
	}

	targets := make([]wire.NodeID, cfg.nc)
	for i := range targets {
		targets[i] = wire.NodeID(i)
	}
	for c := 0; c < 2; c++ {
		cl := workload.NewClient(workload.ClientConfig{
			Self:     wire.NodeID(5000 + c),
			Targets:  targets,
			Policy:   workload.RoundRobin,
			Rate:     cfg.rate,
			TxSize:   types.DefaultTxSize,
			F:        cfg.f,
			Epoch:    simnet.Epoch,
			GenStart: simnet.Epoch.Add(time.Duration(cfg.zones*cfg.perZone)*cfg.joinSpacing + 100*time.Millisecond),
			GenStop:  end.Add(-cfg.duration / 6),
		})
		net.AddNode(wire.NodeID(5000+c), cl)
	}
	return zc
}

func TestMultiZoneEndToEnd(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 2, perZone: 6,
		rate: 400, duration: 8 * time.Second,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(cfg.duration)

	// Every full node must have completed blocks.
	incomplete := 0
	var minBlocks, maxBlocks int
	first := true
	for _, fn := range zc.fulls {
		_, bundles, blocks := fn.Stats()
		if blocks == 0 {
			incomplete++
			continue
		}
		if bundles == 0 {
			t.Fatalf("node %d completed blocks without assembling bundles", fn.cfg.Self)
		}
		if first || int(blocks) < minBlocks {
			minBlocks = int(blocks)
		}
		if first || int(blocks) > maxBlocks {
			maxBlocks = int(blocks)
		}
		first = false
	}
	if incomplete > 0 {
		t.Fatalf("%d of %d full nodes completed no blocks", incomplete, len(zc.fulls))
	}
	if minBlocks == 0 {
		t.Fatal("some full node completed zero blocks")
	}
	t.Logf("full nodes completed %d..%d blocks", minBlocks, maxBlocks)

	// Block heights completed per node must be strictly increasing by 1
	// (blocks reconstruct in chain order).
	for id, heights := range zc.completed {
		for i, h := range heights {
			if h != uint64(i+1) {
				t.Fatalf("node %d completed heights %v (gap at %d)", id, heights[:i+1], i)
			}
		}
	}

	// Each zone must have developed relayers (the paper maintains n_zr =
	// n_c per zone; with churn-free joins we tolerate ±1).
	relayersPerZone := make(map[int]int)
	for _, fn := range zc.fulls {
		if fn.IsRelayer() {
			relayersPerZone[fn.cfg.Zone]++
		}
	}
	for z := 0; z < cfg.zones; z++ {
		if relayersPerZone[z] == 0 {
			t.Fatalf("zone %d has no relayers", z)
		}
	}
	t.Logf("relayers per zone: %v", relayersPerZone)

	// Consensus bandwidth check: each consensus node's subscriber count
	// must stay far below the full-node population (that is Multi-Zone's
	// whole point — Θ(zones·n_c), not Θ(N)).
	for i, h := range zc.hosts {
		subs := h.Dist.Subscribers()
		if subs > cfg.zones*cfg.nc+cfg.zones {
			t.Fatalf("consensus node %d has %d subscribers (> zones·nc budget)", i, subs)
		}
	}
}

func TestMultiZoneOrdinaryNodesUseRelayers(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 8,
		rate: 300, duration: 8 * time.Second,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(cfg.duration)

	relayers := 0
	ordinary := 0
	for _, fn := range zc.fulls {
		if fn.IsRelayer() {
			relayers++
		} else {
			ordinary++
			// Ordinary nodes must still have received everything.
			if _, _, blocks := fn.Stats(); blocks == 0 {
				t.Fatalf("ordinary node %d completed no blocks", fn.cfg.Self)
			}
		}
	}
	if ordinary == 0 {
		t.Log("all nodes are relayers (small zone); acceptable but weak")
	}
	t.Logf("relayers=%d ordinary=%d", relayers, ordinary)
}

func TestDistributorSubscribeProtocol(t *testing.T) {
	node.RegisterAllMessages()
	RegisterMessages()
	striper, _ := NewStriper(4, 1)
	net := simnet.New(simnet.Config{Latency: simnet.UniformLatency(time.Millisecond)})
	d := NewDistributor(2, 4, striper, 2)

	type recorded struct {
		from wire.NodeID
		m    wire.Message
	}
	var got []recorded
	rec := func(self wire.NodeID) *recHandler {
		return &recHandler{onRecv: func(from wire.NodeID, m wire.Message) {
			got = append(got, recorded{from, m})
		}}
	}
	distHost := &distHandler{d: d}
	net.AddNode(2, distHost)
	net.AddNode(50, rec(50))
	net.AddNode(51, rec(51))
	net.AddNode(52, rec(52))
	net.Start()

	// Node 50 subscribes for stripe 2 → accepted, FromConsensus.
	distHost.inject(50, &Subscribe{Stripes: []uint8{2}})
	// Node 51 asks for the wrong stripe → rejected.
	distHost.inject(51, &Subscribe{Stripes: []uint8{0}})
	// Node 51 then asks correctly → accepted (cap is 2).
	distHost.inject(51, &Subscribe{Stripes: []uint8{2}})
	// Node 52 exceeds the cap → rejected with children.
	distHost.inject(52, &Subscribe{Stripes: []uint8{2}})
	net.Run(time.Second)

	accepts, rejects := 0, 0
	for _, r := range got {
		switch m := r.m.(type) {
		case *AcceptSubscribe:
			accepts++
			if !m.FromConsensus {
				t.Fatal("consensus accept must set FromConsensus")
			}
		case *RejectSubscribe:
			rejects++
		}
	}
	if accepts != 2 || rejects != 2 {
		t.Fatalf("accepts=%d rejects=%d, want 2/2", accepts, rejects)
	}
	if d.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d", d.Subscribers())
	}
	// Unsubscribe shrinks the set.
	distHost.inject(50, &Unsubscribe{Stripes: []uint8{2}})
	if d.Subscribers() != 1 {
		t.Fatalf("after unsubscribe Subscribers = %d", d.Subscribers())
	}
}

// recHandler records deliveries.
type recHandler struct {
	ctx    interface{ Now() time.Time }
	onRecv func(from wire.NodeID, m wire.Message)
}

func (r *recHandler) Start(ctx env.Context)                    {}
func (r *recHandler) Receive(from wire.NodeID, m wire.Message) { r.onRecv(from, m) }

// distHandler hosts a bare Distributor in the simulator.
type distHandler struct {
	d   *Distributor
	ctx env.Context
}

func (h *distHandler) Start(ctx env.Context) {
	h.ctx = ctx
	h.d.Start(ctx)
}
func (h *distHandler) Receive(from wire.NodeID, m wire.Message) { h.d.Receive(from, m) }
func (h *distHandler) inject(from wire.NodeID, m wire.Message)  { h.d.Receive(from, m) }

// TestRelayerCrashPromotesReplacement crashes a converged relayer; the
// periodic relayer-count check (§IV-E) must promote a replacement so the
// zone keeps completing blocks.
func TestRelayerCrashPromotesReplacement(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 7,
		rate: 300, duration: 12 * time.Second,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(4 * time.Second) // converge + commit a while

	// Crash the first relayer we find.
	var victim *FullNode
	for _, fn := range zc.fulls {
		if fn.IsRelayer() {
			victim = fn
			break
		}
	}
	if victim == nil {
		t.Fatal("no relayer converged before the crash")
	}
	crashedStripes := victim.RelayedStripes()
	zc.net.Crash(victim.cfg.Self)
	t.Logf("crashed relayer %d (stripes %v)", victim.cfg.Self, crashedStripes)

	zc.net.Run(cfg.duration)

	// Someone else must now relay the victim's stripes.
	covered := make(map[uint8]bool)
	for _, fn := range zc.fulls {
		if fn.cfg.Self == victim.cfg.Self {
			continue
		}
		for _, s := range fn.RelayedStripes() {
			covered[s] = true
		}
	}
	for _, s := range crashedStripes {
		if !covered[s] {
			t.Fatalf("stripe %d orphaned after relayer crash", s)
		}
	}
	// Survivors keep completing blocks after the crash.
	for _, fn := range zc.fulls {
		if fn.cfg.Self == victim.cfg.Self {
			continue
		}
		heights := zc.completed[fn.cfg.Self]
		if len(heights) == 0 || heights[len(heights)-1] <= zc.completed[victim.cfg.Self][len(zc.completed[victim.cfg.Self])-1] {
			t.Fatalf("node %d made no progress after the relayer crash", fn.cfg.Self)
		}
	}
}

// TestRelayerLeaveHandsOver exercises the §IV-E leave protocol: a departing
// relayer notifies a subscriber, which resubscribes to the consensus nodes
// and takes over.
func TestRelayerLeaveHandsOver(t *testing.T) {
	cfg := zoneConfig{
		nc: 4, f: 1, zones: 1, perZone: 6,
		rate: 300, duration: 10 * time.Second,
	}
	zc := buildZoneCluster(t, cfg)
	zc.net.Start()
	zc.net.Run(4 * time.Second)

	var leaver *FullNode
	for _, fn := range zc.fulls {
		if fn.IsRelayer() {
			leaver = fn
			break
		}
	}
	if leaver == nil {
		t.Fatal("no relayer to leave")
	}
	stripes := leaver.RelayedStripes()
	leaver.Leave()
	zc.net.Crash(leaver.cfg.Self) // it is gone after announcing
	zc.net.Run(cfg.duration)

	covered := make(map[uint8]bool)
	for _, fn := range zc.fulls {
		if fn.cfg.Self == leaver.cfg.Self {
			continue
		}
		for _, s := range fn.RelayedStripes() {
			covered[s] = true
		}
	}
	for _, s := range stripes {
		if !covered[s] {
			t.Fatalf("stripe %d orphaned after leave", s)
		}
	}
}

// TestFullNodeLedgerIntegration attaches a ledger to one full node and
// verifies the recorded chain matches what the node completed.
func TestFullNodeLedgerIntegration(t *testing.T) {
	node.RegisterAllMessages()
	RegisterMessages()
	striper, _ := NewStriper(4, 1)
	net := simnet.New(simnet.Config{
		Uplink: simnet.Mbps100, Downlink: simnet.Mbps100,
		Latency: simnet.LANLatency(), Seed: 6,
	})
	suite := crypto.NewSimSuite(4, 61)
	for i := 0; i < 4; i++ {
		host, err := NewConsensusHost(HostConfig{
			NC: 4, F: 1, Self: wire.NodeID(i), Signer: suite.Signer(i),
			Engine: node.EnginePBFT, BundleSize: 25,
			BundleInterval: 20 * time.Millisecond, ViewTimeout: time.Second,
			Striper: striper,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.AddNode(wire.NodeID(i), host)
	}
	led := ledger.New()
	completed := 0
	fn, err := NewFullNode(FullNodeConfig{
		Self: 100, Zone: 0, JoinSeq: 0, NC: 4, F: 1,
		Striper: striper, Signer: suite.Signer(0),
		Ledger: led,
		OnBlockComplete: func(blk *core.PredisBlock, txs int) {
			completed++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.AddNode(100, fn)
	net.AddNode(900, workload.NewClient(workload.ClientConfig{
		Self: 900, Targets: []wire.NodeID{0, 1, 2, 3},
		Policy: workload.RoundRobin, Rate: 300,
		TxSize: types.DefaultTxSize, F: 1, Epoch: simnet.Epoch,
		GenStart: simnet.Epoch.Add(200 * time.Millisecond),
		GenStop:  simnet.Epoch.Add(3 * time.Second),
	}))
	net.Start()
	net.Run(5 * time.Second)

	if completed == 0 {
		t.Fatal("no blocks completed")
	}
	if led.Len() != completed {
		t.Fatalf("ledger holds %d blocks, node completed %d", led.Len(), completed)
	}
	if err := led.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	head, _ := led.Head()
	if head.Height != uint64(completed) {
		t.Fatalf("head height %d, want %d", head.Height, completed)
	}
	if led.TotalTxs() == 0 {
		t.Fatal("ledger recorded zero transactions")
	}
}
