package env

import (
	"math/rand"
	"time"
)

// Backoff is a capped exponential backoff policy with seeded jitter. It is
// the repository's single retry policy (ISSUE 1 tentpole 3): the Predis
// missing-bundle fetch, the Multi-Zone digest/stripe pulls, and the rtnet
// redial loop all derive their retry delays from it so that every retry
// path shares the same shape — exponential growth, a hard cap, and
// deterministic-per-seed jitter that decorrelates peers without breaking
// simulation reproducibility.
//
// The zero value is not useful; use DefaultBackoff or fill in Base.
type Backoff struct {
	// Base is the delay before the first retry (attempt 0).
	Base time.Duration
	// Max caps the grown delay before jitter. Zero means no cap.
	Max time.Duration
	// Factor is the per-attempt multiplier. Values < 2 are treated as 2.
	Factor float64
	// Jitter is the fraction of the delay randomized, in [0, 1]. The
	// delay for attempt k is d*(1-Jitter) + U[0, 2*Jitter*d), i.e. jitter
	// is symmetric around the nominal delay. Zero disables jitter.
	Jitter float64
}

// DefaultBackoff is the policy adopted across the repo: 1x base delay,
// doubling, capped at 16x, with ±25% jitter.
func DefaultBackoff(base time.Duration) Backoff {
	return Backoff{Base: base, Max: 16 * base, Factor: 2, Jitter: 0.25}
}

// Delay returns the wait before retry number attempt (0-based). rng
// supplies the jitter draw; it must be the node's deterministic source
// (Context.Rand) so simulations stay reproducible. A nil rng disables
// jitter.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := b.Base
	if d <= 0 {
		d = time.Millisecond
	}
	factor := b.Factor
	if factor < 2 {
		factor = 2
	}
	for i := 0; i < attempt; i++ {
		d = time.Duration(float64(d) * factor)
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
		if d <= 0 { // overflow guard
			d = b.Max
			if d <= 0 {
				d = time.Hour
			}
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && rng != nil {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		lo := float64(d) * (1 - j)
		span := float64(d) * 2 * j
		d = time.Duration(lo + rng.Float64()*span)
	}
	if d < 0 {
		d = 0
	}
	return d
}
