package env

import (
	"os"
	"strconv"
	"strings"
	"time"
)

// HostMeter probes host machine cost — real wall-clock time and process
// peak RSS — for experiments that report how much hardware a simulation
// consumed (the harness scale experiment's machine-cost table). These
// readings are nondeterministic by nature and must never influence
// simulation behavior, only ride alongside the deterministic results.
//
// The interface shape is deliberate: the determinism analyzers refuse
// to follow taint across interfaces declared in trusted runtime
// packages, which makes HostMeter the one sanctioned channel through
// which sim-visible code may read the host clock. Concrete values come
// only from NewHostMeter.
type HostMeter interface {
	// WallStart records the current host time as the stopwatch origin.
	WallStart()
	// WallElapsed returns host time elapsed since WallStart.
	WallElapsed() time.Duration
	// PeakRSSMB returns the process peak resident set (VmHWM) in MB,
	// or 0 when unavailable (non-Linux). The high-water mark is
	// process-global and monotone, so concurrent measurements report
	// at least their own peak.
	PeakRSSMB() int
}

// NewHostMeter returns a host-cost probe. The constructor itself reads
// no clocks; callers start the stopwatch explicitly.
func NewHostMeter() HostMeter { return &hostMeter{} }

type hostMeter struct {
	start time.Time
}

func (m *hostMeter) WallStart() { m.start = time.Now() }

func (m *hostMeter) WallElapsed() time.Duration { return time.Since(m.start) }

func (m *hostMeter) PeakRSSMB() int {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0
		}
		return kb >> 10
	}
	return 0
}
