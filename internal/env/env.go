// Package env defines the runtime interface between protocol state machines
// and the network runtime that hosts them.
//
// Every protocol in this repository (PBFT, HotStuff, Predis, Multi-Zone,
// the Narwhal/Stratus baselines) is written as a single-threaded state
// machine: it reacts to Receive and timer callbacks, and its only effects
// are Send calls and new timers. The hosting runtime guarantees that all
// callbacks into one handler are serialized. Two runtimes implement this
// contract:
//
//   - internal/simnet: a deterministic discrete-event simulator running in
//     virtual time, used by tests and the benchmark harness;
//   - internal/rtnet: a real-time TCP runtime used by the cmd/ binaries.
//
// Because handlers never touch goroutines, locks, or wall-clock time
// directly, the same protocol code runs unchanged in both.
package env

import (
	"math/rand"
	"time"

	"predis/internal/wire"
)

// Timer is a cancelable pending callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the timer was still
	// pending (false when it already fired or was stopped).
	Stop() bool
}

// Context is the capability surface a protocol handler gets from its
// runtime. All methods must be called only from within handler callbacks
// (Receive, timer functions, or Start), which the runtime serializes.
type Context interface {
	// ID returns this node's identifier.
	ID() wire.NodeID
	// Now returns the current time (virtual in the simulator).
	Now() time.Time
	// Send transmits a message to another node. Delivery is asynchronous
	// and may silently fail (crashed peer, partition, drop injection).
	// Sending to the local node delivers through the same path.
	Send(to wire.NodeID, m wire.Message)
	// After schedules fn to run on this node's executor after d. The
	// returned Timer can cancel it.
	After(d time.Duration, fn func()) Timer
	// Rand returns this node's deterministic random source. It must only
	// be used from handler callbacks.
	Rand() *rand.Rand
	// Logf emits a debug log line attributed to this node.
	Logf(format string, args ...any)
}

// Handler is a protocol state machine hosted by a runtime.
type Handler interface {
	// Start is called exactly once, before any Receive, with the node's
	// context. Handlers typically keep the context and arm initial timers.
	Start(ctx Context)
	// Receive delivers one message. The runtime serializes all callbacks.
	Receive(from wire.NodeID, m wire.Message)
}

// Restartable is implemented by handlers that can recover from a
// fail-stop crash. Runtimes that model process restarts (simnet's
// Network.Restart) call OnRestart exactly once, on the node's executor,
// when the node comes back up. Implementations should stop and re-arm
// their periodic timers (crash suppression breaks self-re-arming timer
// chains) and kick off whatever catch-up protocol they support.
//
// Handlers that do not implement Restartable resume with whatever timers
// survived, which for most protocols in this repository means they stay
// silent forever — the pre-crash timer events were suppressed and nothing
// re-arms them.
type Restartable interface {
	OnRestart()
}

// Multicast sends m to every peer in the list, skipping self. It preserves
// the order of peers, which matters for bandwidth-serialized runtimes: the
// first peer listed starts receiving first.
func Multicast(ctx Context, peers []wire.NodeID, m wire.Message) {
	self := ctx.ID()
	for _, p := range peers {
		if p == self {
			continue
		}
		ctx.Send(p, m)
	}
}

// HandlerFunc adapts a function to the Handler interface for small test
// fixtures.
type HandlerFunc struct {
	OnStart   func(ctx Context)
	OnReceive func(from wire.NodeID, m wire.Message)
}

var _ Handler = (*HandlerFunc)(nil)

// Start implements Handler.
func (h *HandlerFunc) Start(ctx Context) {
	if h.OnStart != nil {
		h.OnStart(ctx)
	}
}

// Receive implements Handler.
func (h *HandlerFunc) Receive(from wire.NodeID, m wire.Message) {
	if h.OnReceive != nil {
		h.OnReceive(from, m)
	}
}
