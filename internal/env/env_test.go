package env

import (
	"math/rand"
	"testing"
	"time"

	"predis/internal/wire"
)

// fakeCtx is a minimal Context for unit-testing helpers.
type fakeCtx struct {
	id    wire.NodeID
	sends []wire.NodeID
}

func (f *fakeCtx) ID() wire.NodeID                     { return f.id }
func (f *fakeCtx) Now() time.Time                      { return time.Time{} }
func (f *fakeCtx) Send(to wire.NodeID, m wire.Message) { f.sends = append(f.sends, to) }
func (f *fakeCtx) After(d time.Duration, fn func()) Timer {
	return nil
}
func (f *fakeCtx) Rand() *rand.Rand    { return rand.New(rand.NewSource(1)) }
func (f *fakeCtx) Logf(string, ...any) {}

type nilMsg struct{}

func (nilMsg) Type() wire.Type            { return 0x7fee }
func (nilMsg) WireSize() int              { return wire.FrameOverhead }
func (nilMsg) EncodeBody(e *wire.Encoder) {}

func TestMulticastSkipsSelf(t *testing.T) {
	ctx := &fakeCtx{id: 2}
	Multicast(ctx, []wire.NodeID{0, 1, 2, 3}, nilMsg{})
	if len(ctx.sends) != 3 {
		t.Fatalf("sent to %d peers, want 3", len(ctx.sends))
	}
	for _, to := range ctx.sends {
		if to == 2 {
			t.Fatal("multicast sent to self")
		}
	}
	// Order preserved (matters for bandwidth-serialized runtimes).
	if ctx.sends[0] != 0 || ctx.sends[1] != 1 || ctx.sends[2] != 3 {
		t.Fatalf("order not preserved: %v", ctx.sends)
	}
}

func TestHandlerFunc(t *testing.T) {
	var started, received bool
	h := &HandlerFunc{
		OnStart:   func(ctx Context) { started = true },
		OnReceive: func(from wire.NodeID, m wire.Message) { received = true },
	}
	h.Start(&fakeCtx{})
	h.Receive(1, nilMsg{})
	if !started || !received {
		t.Fatalf("started=%v received=%v", started, received)
	}
	// Nil callbacks must not panic.
	empty := &HandlerFunc{}
	empty.Start(&fakeCtx{})
	empty.Receive(1, nilMsg{})
}
