package env

import "sync"

// Parallel runs fn(0), fn(1), …, fn(n-1), fanning the calls out over up
// to `workers` goroutines. With workers ≤ 1 it degrades to a plain
// sequential loop, byte-identical in behavior to the pre-parallel code.
//
// It is the harness's worker pool for independent experiment points:
// each point owns its own simnet.Network, so point-level determinism is
// untouched by goroutine scheduling — only the wall-clock interleaving
// changes, and callers merge results by index. The goroutines live here
// in env (exempt from the determinism analyzer's no-goroutine rule)
// precisely so that sim-visible packages can use the pool without
// holding a `go` statement themselves.
//
// fn must be safe for concurrent invocation with distinct indices;
// distinct-index writes to caller-owned slices are safe.
func Parallel(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
