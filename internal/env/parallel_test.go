package env

import (
	"sync"
	"testing"
)

// TestParallelEmpty: n = 0 must invoke fn zero times and return
// immediately for any worker count, including degenerate ones.
func TestParallelEmpty(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 4} {
		calls := 0
		Parallel(0, workers, func(i int) { calls++ })
		if calls != 0 {
			t.Fatalf("workers=%d: fn called %d times for n=0", workers, calls)
		}
	}
}

// TestParallelSequentialFallback: workers ≤ 1 (including 0 and negative)
// must degrade to a plain in-order sequential loop.
func TestParallelSequentialFallback(t *testing.T) {
	for _, workers := range []int{-3, 0, 1} {
		var order []int
		Parallel(5, workers, func(i int) { order = append(order, i) })
		if len(order) != 5 {
			t.Fatalf("workers=%d: got %d calls, want 5", workers, len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("workers=%d: call %d got index %d; sequential fallback must preserve order", workers, i, v)
			}
		}
	}
}

// TestParallelWorkersExceedN: workers > n must still call every index
// exactly once (the pool is capped at n; no goroutine may receive an
// out-of-range or duplicate index).
func TestParallelWorkersExceedN(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	counts := make([]int, n)
	Parallel(n, 64, func(i int) {
		mu.Lock()
		counts[i]++
		mu.Unlock()
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d called %d times, want exactly once", i, c)
		}
	}
}

// TestParallelCoversAllIndices: with a genuinely concurrent pool every
// index in a larger range is visited exactly once.
func TestParallelCoversAllIndices(t *testing.T) {
	const n = 100
	var mu sync.Mutex
	counts := make([]int, n)
	Parallel(n, 4, func(i int) {
		mu.Lock()
		counts[i]++
		mu.Unlock()
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d called %d times, want exactly once", i, c)
		}
	}
}

// TestParallelDistinctIndexWrites pins the documented contract that
// distinct-index writes to a caller-owned slice need no locking.
func TestParallelDistinctIndexWrites(t *testing.T) {
	const n = 64
	out := make([]int, n)
	Parallel(n, 8, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
