package env

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
		800 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w {
			t.Fatalf("attempt %d: got %v want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	b := DefaultBackoff(100 * time.Millisecond)
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		d1 := b.Delay(i, rng1)
		d2 := b.Delay(i, rng2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v vs %v", i, d1, d2)
		}
		nominal := b.Delay(i, nil)
		lo := time.Duration(float64(nominal) * 0.75)
		hi := time.Duration(float64(nominal) * 1.25)
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: %v outside [%v, %v]", i, d1, lo, hi)
		}
	}
}

func TestBackoffZeroValueSane(t *testing.T) {
	var b Backoff
	if d := b.Delay(0, nil); d <= 0 {
		t.Fatalf("zero-value delay must be positive, got %v", d)
	}
	if d := b.Delay(50, nil); d <= 0 {
		t.Fatalf("huge attempt must not overflow negative, got %v", d)
	}
}
