// Package txpool is the baseline data production strategy: a FIFO
// transaction pool whose proposals are plain batches carrying the full
// transactions. Vanilla PBFT and vanilla HotStuff in the evaluation use
// this application, so the leader's proposal grows linearly with the batch
// size — exactly the bottleneck Predis removes.
package txpool

import (
	"errors"
	"fmt"
	"sync"

	"predis/internal/consensus"
	"predis/internal/crypto"
	"predis/internal/merkle"
	"predis/internal/types"
	"predis/internal/wire"
)

// TypeBatch tags the batch proposal payload.
const TypeBatch = wire.TypeRangeTxPool + 1

// Batch is a consensus payload carrying full transactions.
type Batch struct {
	Height uint64
	Txs    []*types.Transaction
}

var _ wire.Message = (*Batch)(nil)

// Type implements wire.Message.
func (b *Batch) Type() wire.Type { return TypeBatch }

// WireSize implements wire.Message.
func (b *Batch) WireSize() int { return wire.FrameOverhead + 8 + types.SizeTxs(b.Txs) }

// EncodeBody implements wire.Message.
func (b *Batch) EncodeBody(e *wire.Encoder) {
	e.U64(b.Height)
	types.EncodeTxs(e, b.Txs)
}

func decodeBatch(d *wire.Decoder) (wire.Message, error) {
	h := d.U64()
	txs, err := types.DecodeTxs(d)
	if err != nil {
		return nil, err
	}
	return &Batch{Height: h, Txs: txs}, d.Err()
}

// Digest returns the batch identity: height plus the Merkle root of the
// transaction hashes.
func (b *Batch) Digest() crypto.Hash {
	leaves := make([]crypto.Hash, len(b.Txs))
	for i, t := range b.Txs {
		h := t.Hash()
		leaves[i] = merkle.HashLeaf(h[:])
	}
	root := merkle.RootOfHashes(leaves)
	e := wire.NewEncoder(40)
	e.U64(b.Height)
	e.Bytes32(root)
	return crypto.HashBytes(e.Bytes())
}

var registerOnce sync.Once

// RegisterMessages registers the batch payload type; idempotent.
func RegisterMessages() {
	registerOnce.Do(func() {
		wire.Register(TypeBatch, "txpool.batch", decodeBatch)
	})
}

// Options configures the baseline application.
type Options struct {
	// BatchSize is the maximum transactions per proposal (the paper
	// sweeps 400 and 800 in Fig. 4).
	BatchSize int
	// OnCommit receives committed batches in order.
	OnCommit func(height uint64, txs []*types.Transaction)
}

// App is the baseline consensus.Application. It must run on the node's
// serialized executor.
//
// Clients broadcast commands to every replica (the BFT-SMaRt / HotStuff
// client model), so the pool dedupes: a transaction already pooled or
// already committed is dropped, and commits executed by other leaders
// purge the local queue lazily.
type App struct {
	opts  Options
	queue []*types.Transaction
	seen  map[crypto.Hash]struct{} // pooled or committed
	done  map[crypto.Hash]struct{} // committed

	lastHeight uint64
	committed  uint64
}

var (
	_ consensus.Application  = (*App)(nil)
	_ consensus.WorkReporter = (*App)(nil)
)

// New builds the baseline app.
func New(opts Options) (*App, error) {
	if opts.BatchSize <= 0 {
		return nil, errors.New("txpool: BatchSize must be positive")
	}
	return &App{
		opts: opts,
		seen: make(map[crypto.Hash]struct{}),
		done: make(map[crypto.Hash]struct{}),
	}, nil
}

// Submit enqueues a transaction unless it is already pooled or committed.
func (a *App) Submit(tx *types.Transaction) {
	h := tx.Hash()
	if _, ok := a.seen[h]; ok {
		return
	}
	a.seen[h] = struct{}{}
	a.queue = append(a.queue, tx)
}

// QueueLen returns the number of pooled transactions.
func (a *App) QueueLen() int { return len(a.queue) }

// Committed returns the number of committed transactions.
func (a *App) Committed() uint64 { return a.committed }

// HasPendingWork implements consensus.WorkReporter.
func (a *App) HasPendingWork() bool {
	a.compact()
	return len(a.queue) > 0
}

// BuildProposal implements consensus.Application. Transactions are removed
// from the pool optimistically; if the proposal dies in a view change it is
// re-proposed from the prepared set carried by the view-change messages,
// so transactions are not lost in the common path.
func (a *App) BuildProposal(height uint64, parent wire.Message) (wire.Message, crypto.Hash, bool) {
	a.compact()
	if len(a.queue) == 0 {
		return nil, crypto.ZeroHash, false
	}
	n := a.opts.BatchSize
	if n > len(a.queue) {
		n = len(a.queue)
	}
	batch := &Batch{Height: height, Txs: a.queue[:n:n]}
	a.queue = a.queue[n:]
	return batch, batch.Digest(), true
}

// compact removes transactions that committed via another leader's block.
func (a *App) compact() {
	kept := a.queue[:0]
	for _, tx := range a.queue {
		if _, ok := a.done[tx.Hash()]; !ok {
			kept = append(kept, tx)
		}
	}
	a.queue = kept
}

// ValidateProposal implements consensus.Application.
func (a *App) ValidateProposal(height uint64, payload, parent wire.Message) (crypto.Hash, error) {
	b, ok := payload.(*Batch)
	if !ok {
		return crypto.ZeroHash, fmt.Errorf("txpool: payload is %T", payload)
	}
	if b.Height != height {
		return crypto.ZeroHash, fmt.Errorf("txpool: batch height %d at consensus height %d", b.Height, height)
	}
	if len(b.Txs) == 0 {
		return crypto.ZeroHash, errors.New("txpool: empty batch")
	}
	return b.Digest(), nil
}

// OnCommit implements consensus.Application. Transactions that already
// committed in an earlier block (possible when a view change causes a
// re-proposal race) are filtered so downstream consumers never see a
// transaction twice.
func (a *App) OnCommit(height uint64, payload wire.Message) {
	b, ok := payload.(*Batch)
	if !ok {
		return
	}
	a.lastHeight = height
	fresh := b.Txs[:0:0]
	for _, tx := range b.Txs {
		h := tx.Hash()
		if _, dup := a.done[h]; dup {
			continue
		}
		a.done[h] = struct{}{}
		a.seen[h] = struct{}{}
		fresh = append(fresh, tx)
	}
	a.committed += uint64(len(fresh))
	if a.opts.OnCommit != nil {
		a.opts.OnCommit(height, fresh)
	}
}
