package txpool

import (
	"testing"
	"time"

	"predis/internal/types"
	"predis/internal/wire"
)

func mkTx(seq uint64) *types.Transaction {
	return types.NewTransaction(5, seq, 512, time.Duration(seq))
}

func mustApp(t *testing.T, batch int) *App {
	t.Helper()
	a, err := New(Options{BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsZeroBatch(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("BatchSize=0 accepted")
	}
}

func TestSubmitDedupes(t *testing.T) {
	a := mustApp(t, 10)
	tx := mkTx(1)
	a.Submit(tx)
	a.Submit(tx)
	a.Submit(mkTx(2))
	if a.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2 (duplicate dropped)", a.QueueLen())
	}
}

func TestBuildProposalBatches(t *testing.T) {
	a := mustApp(t, 3)
	for i := uint64(1); i <= 5; i++ {
		a.Submit(mkTx(i))
	}
	payload, digest, ok := a.BuildProposal(1, nil)
	if !ok {
		t.Fatal("no proposal from non-empty pool")
	}
	batch := payload.(*Batch)
	if len(batch.Txs) != 3 {
		t.Fatalf("batch has %d txs, want 3", len(batch.Txs))
	}
	if digest != batch.Digest() {
		t.Fatal("digest mismatch")
	}
	if a.QueueLen() != 2 {
		t.Fatalf("pool kept %d txs, want 2", a.QueueLen())
	}
	if _, _, ok := a.BuildProposal(2, nil); !ok {
		t.Fatal("second proposal should drain the rest")
	}
	if _, _, ok := a.BuildProposal(3, nil); ok {
		t.Fatal("empty pool produced a proposal")
	}
}

func TestValidateProposal(t *testing.T) {
	a := mustApp(t, 4)
	batch := &Batch{Height: 2, Txs: []*types.Transaction{mkTx(1)}}
	if _, err := a.ValidateProposal(2, batch, nil); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if _, err := a.ValidateProposal(3, batch, nil); err == nil {
		t.Fatal("height mismatch accepted")
	}
	if _, err := a.ValidateProposal(2, &Batch{Height: 2}, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := a.ValidateProposal(2, mkSubmit(), nil); err == nil {
		t.Fatal("wrong payload type accepted")
	}
}

func mkSubmit() wire.Message { return &types.SubmitTx{Tx: mkTx(9)} }

func TestOnCommitDedupesAcrossBlocks(t *testing.T) {
	var delivered []int
	a, err := New(Options{BatchSize: 4, OnCommit: func(h uint64, txs []*types.Transaction) {
		delivered = append(delivered, len(txs))
	}})
	if err != nil {
		t.Fatal(err)
	}
	tx1, tx2 := mkTx(1), mkTx(2)
	a.OnCommit(1, &Batch{Height: 1, Txs: []*types.Transaction{tx1, tx2}})
	// A view-change race re-commits tx2 alongside a fresh tx3.
	a.OnCommit(2, &Batch{Height: 2, Txs: []*types.Transaction{tx2, mkTx(3)}})
	if a.Committed() != 3 {
		t.Fatalf("Committed = %d, want 3 (tx2 counted once)", a.Committed())
	}
	if len(delivered) != 2 || delivered[0] != 2 || delivered[1] != 1 {
		t.Fatalf("delivered = %v", delivered)
	}
}

func TestCommittedTxsPurgedFromPool(t *testing.T) {
	a := mustApp(t, 10)
	tx := mkTx(1)
	a.Submit(tx)
	// Another leader committed it first.
	a.OnCommit(1, &Batch{Height: 1, Txs: []*types.Transaction{tx}})
	if a.HasPendingWork() {
		t.Fatal("committed tx still reported as pending work")
	}
	if _, _, ok := a.BuildProposal(2, nil); ok {
		t.Fatal("committed tx re-proposed")
	}
}

func TestBatchCodec(t *testing.T) {
	RegisterMessages()
	types.RegisterMessages()
	b := &Batch{Height: 9, Txs: []*types.Transaction{mkTx(1), mkTx(2)}}
	got, err := wire.Roundtrip(b)
	if err != nil {
		t.Fatal(err)
	}
	gb := got.(*Batch)
	if gb.Digest() != b.Digest() {
		t.Fatal("digest changed across roundtrip")
	}
	if len(wire.Marshal(b)) != b.WireSize() {
		t.Fatal("Batch WireSize mismatch")
	}
}

func TestBatchDigestSensitivity(t *testing.T) {
	b1 := &Batch{Height: 1, Txs: []*types.Transaction{mkTx(1), mkTx(2)}}
	b2 := &Batch{Height: 2, Txs: b1.Txs}
	if b1.Digest() == b2.Digest() {
		t.Fatal("height must affect digest")
	}
	b3 := &Batch{Height: 1, Txs: []*types.Transaction{mkTx(2), mkTx(1)}}
	if b1.Digest() == b3.Digest() {
		t.Fatal("tx order must affect digest")
	}
}
