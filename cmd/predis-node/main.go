// Command predis-node runs one consensus node over real TCP: the same
// node assembly the simulator tests exercise, hosted by the rtnet runtime.
//
// A 4-node local deployment:
//
//	predis-node -id 0 -n 4 -listen :7000 -peers 0=:7000,1=:7001,2=:7002,3=:7003 &
//	predis-node -id 1 -n 4 -listen :7001 -peers 0=:7000,1=:7001,2=:7002,3=:7003 &
//	predis-node -id 2 -n 4 -listen :7002 -peers 0=:7000,1=:7001,2=:7002,3=:7003 &
//	predis-node -id 3 -n 4 -listen :7003 -peers 0=:7000,1=:7001,2=:7002,3=:7003 &
//	predis-client -targets 0=:7000,1=:7001,2=:7002,3=:7003 -rate 500 -duration 10s
//
// Keys are derived deterministically from -keyseed so all nodes agree on
// the membership; use real key distribution in production.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"predis/internal/core"
	"predis/internal/crypto"
	"predis/internal/node"
	"predis/internal/rtnet"
	"predis/internal/types"
	"predis/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id      = flag.Uint("id", 0, "this node's id (0..n-1)")
		n       = flag.Int("n", 4, "number of consensus nodes")
		listen  = flag.String("listen", ":7000", "listen address")
		peers   = flag.String("peers", "", "comma-separated id=host:port list for all nodes")
		mode    = flag.String("mode", "predis", "data production: predis|baseline|narwhal|stratus")
		engine  = flag.String("engine", "pbft", "consensus engine: pbft|hotstuff")
		bundle  = flag.Int("bundle", 50, "bundle/microblock size (txs)")
		batch   = flag.Int("batch", 800, "baseline batch size (txs)")
		keyseed = flag.Uint64("keyseed", 42, "deterministic key suite seed (demo only)")
		quiet   = flag.Bool("quiet", false, "suppress per-block commit logs")
	)
	flag.Parse()

	peerMap, err := parsePeers(*peers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-node:", err)
		return 2
	}
	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-node:", err)
		return 2
	}
	ek, err := parseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-node:", err)
		return 2
	}

	node.RegisterAllMessages()
	suite := crypto.NewEd25519Suite(*n, *keyseed)
	f := (*n - 1) / 3

	var committedTotal uint64
	nd, err := node.New(node.Config{
		Mode:           m,
		Engine:         ek,
		NC:             *n,
		F:              f,
		Self:           wire.NodeID(*id),
		Signer:         suite.Signer(int(*id)),
		BatchSize:      *batch,
		BundleSize:     *bundle,
		BundleInterval: 20 * time.Millisecond,
		ViewTimeout:    2 * time.Second,
		ReplyToClients: true,
		OnCommit: func(height uint64, txs []*types.Transaction) {
			committedTotal += uint64(len(txs))
			if !*quiet {
				fmt.Printf("node %d: block %d committed, %d txs (total %d)\n",
					*id, height, len(txs), committedTotal)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-node:", err)
		return 1
	}

	rt, err := rtnet.New(rtnet.Config{
		Self:      wire.NodeID(*id),
		Listen:    *listen,
		Peers:     peerMap,
		LogWriter: os.Stderr,
	}, nd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-node:", err)
		return 1
	}
	if err := rt.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "predis-node:", err)
		return 1
	}
	defer rt.Close()
	fmt.Printf("node %d (%s/%s) listening on %s\n", *id, *mode, *engine, rt.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("node %d: shutting down after %d committed txs\n", *id, committedTotal)
	return 0
}

func parsePeers(s string) (map[wire.NodeID]string, error) {
	out := make(map[wire.NodeID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		out[wire.NodeID(id)] = kv[1]
	}
	return out, nil
}

func parseMode(s string) (node.Mode, error) {
	switch s {
	case "predis":
		return node.ModePredis, nil
	case "baseline":
		return node.ModeBaseline, nil
	case "narwhal":
		return node.ModeNarwhal, nil
	case "stratus":
		return node.ModeStratus, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseEngine(s string) (node.EngineKind, error) {
	switch s {
	case "pbft":
		return node.EnginePBFT, nil
	case "hotstuff":
		return node.EngineHotStuff, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", s)
	}
}

var _ = core.FaultNone // keep the import for fault flags added by users
