// Command predis-lint runs the repository's custom static-analysis suite
// — determinism, wiresym, lockorder, errchecklite — which mechanically
// enforces the simnet determinism contract and the wire-symmetry
// invariant (see DESIGN.md, "The determinism contract").
//
// Standalone (the Makefile's `make lint`):
//
//	go run ./cmd/predis-lint ./...
//	predis-lint -analyzers determinism,wiresym ./internal/...
//
// As a vet tool (per-package, driven by the go command):
//
//	go build -o bin/predis-lint ./cmd/predis-lint
//	go vet -vettool=$(pwd)/bin/predis-lint ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/suite"
)

func main() {
	var (
		version   = flag.String("V", "", "print version and exit (go vet protocol)")
		analyzers = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: predis-lint [-analyzers a,b] [packages]\n")
		fmt.Fprintf(os.Stderr, "       predis-lint <unit>.cfg   (go vet -vettool mode)\n\n")
		flag.PrintDefaults()
	}
	// go vet probes tools with a bare `-flags` argument and expects a
	// JSON description of the flags they accept; an empty list tells the
	// go command to pass none, which is all predis-lint needs.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()

	if *version != "" {
		// The go command probes tools with -V=full and derives a tool ID
		// from the reply; for "devel" tools it requires a trailing
		// buildID= field, so hash the executable (same scheme as the
		// x/tools unitchecker).
		name := filepath.Base(os.Args[0])
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			os.Exit(2)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			os.Exit(2)
		}
		sum := sha256.Sum256(data)
		fmt.Printf("%s version devel buildID=%02x\n", name, sum)
		return
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := suite.All()
	if *analyzers != "" {
		active = suite.ByName(strings.Split(*analyzers, ","))
		if len(active) == 0 {
			fmt.Fprintf(os.Stderr, "predis-lint: no analyzers match %q\n", *analyzers)
			os.Exit(2)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0], active))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		os.Exit(2)
	}
	os.Exit(runOn(dir, args, active, os.Stdout))
}

// runOn loads patterns relative to dir, runs the suite, and prints
// diagnostics; it returns the process exit code.
func runOn(dir string, patterns []string, active []*analysis.Analyzer, out *os.File) int {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "predis-lint: %d issue(s) in %d package(s)\n",
			len(diags), len(pkgs))
		return 1
	}
	return 0
}

// vetConfig is the subset of the go vet unit-checking protocol config
// predis-lint consumes (see x/tools unitchecker for the full schema).
type vetConfig struct {
	ImportPath                string
	Dir                       string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool implements the `go vet -vettool` protocol: read the unit
// config, always produce the facts file the go command expects, and —
// for packages under analysis (not fact-only dependencies) — run the
// suite via the source loader.
func vettool(cfgPath string, active []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "predis-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		// predis-lint keeps no cross-package facts; an empty file
		// satisfies the protocol.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	dir := cfg.Dir
	if dir == "" {
		dir, _ = os.Getwd()
	}
	code := runOn(dir, []string{cfg.ImportPath}, active, os.Stderr)
	if code == 2 && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	if code == 1 {
		return 2 // vet convention: any nonzero fails the build
	}
	return code
}
