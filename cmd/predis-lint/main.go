// Command predis-lint runs the repository's custom static-analysis suite
// — per-function checks (determinism, wiresym, lockorder, errchecklite,
// encodecache, purecompute) plus the interprocedural analyzers built on
// the call-graph engine (detflow, hotalloc, handlercomplete) — which
// mechanically enforces the simnet determinism contract, the zero-alloc
// hot-path contract, and the wire-symmetry invariant (see DESIGN.md,
// "The determinism contract").
//
// Standalone (the Makefile's `make lint`):
//
//	go run ./cmd/predis-lint ./...
//	predis-lint -analyzers determinism,wiresym ./internal/...
//	predis-lint -json ./... > findings.json
//
// As a vet tool (per-package, driven by the go command):
//
//	go build -o bin/predis-lint ./cmd/predis-lint
//	go vet -vettool=$(pwd)/bin/predis-lint ./...
//
// In vet mode the go command analyzes one package at a time in
// dependency order, handing each unit the .vetx fact files of its
// imports. predis-lint writes real per-function summaries (wall-clock /
// rand / emission / allocation taint, cold-path markers) for module
// packages, so the interprocedural analyzers see through dependency
// boundaries even though only one package is loaded; fact files for
// out-of-module packages are empty placeholders.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"predis/tools/analyzers/analysis"
	"predis/tools/analyzers/suite"
)

// modulePrefix identifies packages whose vetx files carry real facts.
const modulePrefix = "predis"

func main() {
	var (
		version   = flag.String("V", "", "print version and exit (go vet protocol)")
		analyzers = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: predis-lint [-analyzers a,b] [-json] [packages]\n")
		fmt.Fprintf(os.Stderr, "       predis-lint <unit>.cfg   (go vet -vettool mode)\n\n")
		flag.PrintDefaults()
	}
	// go vet probes tools with a bare `-flags` argument and expects a
	// JSON description of the flags they accept; an empty list tells the
	// go command to pass none, which is all predis-lint needs.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()

	if *version != "" {
		// The go command probes tools with -V=full and derives a tool ID
		// from the reply; for "devel" tools it requires a trailing
		// buildID= field, so hash the executable (same scheme as the
		// x/tools unitchecker).
		name := filepath.Base(os.Args[0])
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			os.Exit(2)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			os.Exit(2)
		}
		sum := sha256.Sum256(data)
		fmt.Printf("%s version devel buildID=%02x\n", name, sum)
		return
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := suite.All()
	if *analyzers != "" {
		active = suite.ByName(strings.Split(*analyzers, ","))
		if len(active) == 0 {
			fmt.Fprintf(os.Stderr, "predis-lint: no analyzers match %q\n", *analyzers)
			os.Exit(2)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0], active))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		os.Exit(2)
	}
	os.Exit(runOn(dir, args, active, nil, *jsonOut, os.Stdout))
}

// finding is one diagnostic in -json output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runOn loads patterns relative to dir, runs the suite with the given
// imported facts, and prints diagnostics (text or JSON); it returns the
// process exit code.
func runOn(dir string, patterns []string, active []*analysis.Analyzer, facts *analysis.FactSet, jsonOut bool, out *os.File) int {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		return 2
	}
	diags, err := analysis.RunWithFacts(pkgs, active, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		return 2
	}
	if jsonOut {
		// Run already sorts by file/line/col/analyzer, so the array is
		// deterministic for a given repo state.
		fs := make([]finding, 0, len(diags))
		for _, d := range diags {
			fs = append(fs, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fs); err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "predis-lint: %d issue(s) in %d package(s)\n",
			len(diags), len(pkgs))
		return 1
	}
	return 0
}

// vetConfig is the subset of the go vet unit-checking protocol config
// predis-lint consumes (see x/tools unitchecker for the full schema).
type vetConfig struct {
	ImportPath                string
	Dir                       string
	VetxOnly                  bool
	VetxOutput                string
	PackageVetx               map[string]string
	SucceedOnTypecheckFailure bool
}

// vettool implements the `go vet -vettool` protocol: read the unit
// config, import the dependency facts the go command hands us, produce
// this unit's facts file, and — for packages under analysis (not
// fact-only dependencies) — run the suite via the source loader.
func vettool(cfgPath string, active []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "predis-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	inModule := cfg.ImportPath == modulePrefix ||
		strings.HasPrefix(cfg.ImportPath, modulePrefix+"/")

	// Non-module units (stdlib and the like) get an empty placeholder
	// vetx and are never loaded.
	if !inModule {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "predis-lint:", err)
				return 2
			}
		}
		return 0
	}

	// Merge the fact files of this unit's dependencies (module packages
	// contribute real summaries; others decode to empty sets). Paths are
	// visited in sorted order for deterministic merges.
	imported := analysis.NewFactSet()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		depPaths = append(depPaths, p)
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		raw, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			continue // missing/unreadable dep facts degrade, not fail
		}
		fs, err := analysis.DecodeFacts(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predis-lint: facts of %s: %v\n", p, err)
			return 2
		}
		imported.Merge(fs)
	}

	dir := cfg.Dir
	if dir == "" {
		dir, _ = os.Getwd()
	}

	if cfg.VetxOutput != "" {
		pkgs, err := analysis.Load(dir, cfg.ImportPath)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			return 2
		}
		facts := analysis.ExportFacts(analysis.NewProgram(pkgs, imported))
		enc, err := facts.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "predis-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	code := runOn(dir, []string{cfg.ImportPath}, active, imported, false, os.Stderr)
	if code == 2 && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	if code == 1 {
		return 2 // vet convention: any nonzero fails the build
	}
	return code
}
