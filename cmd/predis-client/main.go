// Command predis-client is a TCP load generator: it submits transactions
// to a running predis-node deployment at a fixed rate, waits for f+1
// matching replies per transaction, and reports throughput and latency.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"predis/internal/env"
	"predis/internal/node"
	"predis/internal/rtnet"
	"predis/internal/stats"
	"predis/internal/types"
	"predis/internal/wire"
)

// clientHandler implements the reply side of the client protocol over
// rtnet. Unlike the simulator's workload.Client it runs in real time.
type clientHandler struct {
	mu      sync.Mutex
	ctx     env.Context
	f       int
	pending map[uint64]*pendingTx
	lats    []time.Duration
	done    int
}

type pendingTx struct {
	submitted time.Time
	replies   map[wire.NodeID]struct{}
}

func (c *clientHandler) Start(ctx env.Context) { c.ctx = ctx }

func (c *clientHandler) Receive(from wire.NodeID, m wire.Message) {
	reply, ok := m.(*types.BlockReply)
	if !ok {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, seq := range reply.Seqs {
		p, ok := c.pending[seq]
		if !ok {
			continue
		}
		p.replies[reply.Replica] = struct{}{}
		if len(p.replies) >= c.f+1 {
			c.lats = append(c.lats, now.Sub(p.submitted))
			c.done++
			delete(c.pending, seq)
		}
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.Uint("id", 1000, "client node id (distinct from consensus ids)")
		targets  = flag.String("targets", "", "comma-separated id=host:port of consensus nodes")
		rate     = flag.Float64("rate", 200, "offered load, tx/s")
		txSize   = flag.Uint("txsize", 512, "transaction size in bytes")
		duration = flag.Duration("duration", 10*time.Second, "generation duration")
		policy   = flag.String("policy", "roundrobin", "target policy: roundrobin|first|broadcast")
	)
	flag.Parse()

	peerMap := make(map[wire.NodeID]string)
	var ids []wire.NodeID
	for _, part := range strings.Split(*targets, ",") {
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			fmt.Fprintf(os.Stderr, "predis-client: bad target %q\n", part)
			return 2
		}
		tid, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predis-client: bad target id %q\n", kv[0])
			return 2
		}
		peerMap[wire.NodeID(tid)] = kv[1]
		ids = append(ids, wire.NodeID(tid))
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "predis-client: -targets is required")
		return 2
	}
	f := (len(ids) - 1) / 3

	node.RegisterAllMessages()
	h := &clientHandler{f: f, pending: make(map[uint64]*pendingTx)}
	rt, err := rtnet.New(rtnet.Config{
		Self: wire.NodeID(*id), Listen: "127.0.0.1:0", Peers: peerMap, LogWriter: os.Stderr,
	}, h)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predis-client:", err)
		return 1
	}
	if err := rt.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "predis-client:", err)
		return 1
	}
	defer rt.Close()

	fmt.Printf("client %d: %0.f tx/s for %v against %d nodes (f=%d)\n",
		*id, *rate, *duration, len(ids), f)
	start := time.Now()
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	var seq uint64
	next := 0
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := range ticker.C {
		if now.Sub(start) > *duration {
			break
		}
		seq++
		tx := types.NewTransaction(wire.NodeID(*id), seq, uint32(*txSize), now.Sub(start))
		h.mu.Lock()
		h.pending[seq] = &pendingTx{submitted: now, replies: make(map[wire.NodeID]struct{})}
		h.mu.Unlock()
		switch *policy {
		case "broadcast":
			for _, t := range ids {
				h.ctx.Send(t, &types.SubmitTx{Tx: tx, Target: t})
			}
		case "first":
			h.ctx.Send(ids[0], &types.SubmitTx{Tx: tx, Target: ids[0]})
		default:
			t := ids[next%len(ids)]
			next++
			h.ctx.Send(t, &types.SubmitTx{Tx: tx, Target: t})
		}
	}

	// Drain window for in-flight transactions.
	time.Sleep(2 * time.Second)
	h.mu.Lock()
	defer h.mu.Unlock()
	elapsed := time.Since(start) - 2*time.Second
	sum := stats.Summarize(h.lats)
	fmt.Printf("submitted=%d confirmed=%d throughput=%.0f tx/s\n",
		seq, h.done, float64(h.done)/elapsed.Seconds())
	fmt.Printf("latency: mean=%v p50=%v p90=%v p99=%v\n", sum.Mean, sum.P50, sum.P90, sum.P99)
	return 0
}
