// Command predis-bench regenerates the paper's evaluation figures
// (§V, Figs. 4–8) from the simulated testbed, plus the crash-recovery
// experiment (scripted relayer and leader crash/restart) and the
// quickstart pipeline walkthrough.
//
// Usage:
//
//	predis-bench [-quick] [-seed N] list
//	predis-bench [-quick] [-seed N] run <experiment-id>...
//	predis-bench [-quick] [-seed N] all
//	predis-bench [-quick] [-seed N] <experiment-id>... [-trace] [-metrics]
//
// Experiment ids: quickstart fig4a fig4b fig4c fig4d fig5wan fig5lan fig6
// fig7 fig8 recovery byzantine contention scale latfloor. The scale
// experiment sweeps 10²..5·10⁴-node populations (aggregated client
// flows, k-ary multicast trees); its latency/depth/throughput tables are
// deterministic while its machine-cost table (wall-clock, peak RSS) is
// inherently host-dependent, so scale does not participate in -replay.
// The latfloor experiment contrasts block-granularity commit with
// streaming commit (-mode stream elsewhere) on the same P-PBFT
// deployment; see EXPERIMENTS.md "Latency floor".
//
// Observability (experiments that support it: quickstart, recovery):
//
//	-trace        write Chrome trace-event JSON (<id>-trace.json; open in
//	              chrome://tracing or https://ui.perfetto.dev) plus the
//	              per-stage latency breakdown CSV (<id>-stages.csv)
//	-trace-out    override the trace output path
//	-metrics      write CSVs: per-stage latency breakdown (<id>-stages.csv),
//	              metric registry (<id>-metrics.csv), NIC/queue samples
//	              (<id>-samples.csv), and per-link bytes (<id>-links.csv)
//	-metrics-out  override the CSV path prefix
//
// Flags and experiment ids can be interleaved, so
// `predis-bench -quick quickstart -trace` works.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"predis/internal/compute"
	"predis/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// cli holds the parsed command line.
type cli struct {
	quick      bool
	seed       int64
	parallel   int
	workers    int
	mode       string
	replay     bool
	trace      bool
	traceOut   string
	metrics    bool
	metricsOut string
	cpuProfile string
	memProfile string
}

// parse accepts flags and positionals in any order: the flag package
// stops at the first non-flag argument, so parsing resumes after each
// positional until the argument list is exhausted.
func parse(argv []string) (cli, []string, error) {
	var c cli
	fs := flag.NewFlagSet("predis-bench", flag.ContinueOnError)
	fs.BoolVar(&c.quick, "quick", false, "shrink durations and sweeps (~1 minute total)")
	fs.Int64Var(&c.seed, "seed", 1, "simulation seed")
	fs.IntVar(&c.parallel, "parallel", 1, "run up to N independent experiment points concurrently (results are identical to -parallel 1)")
	fs.IntVar(&c.workers, "workers", 0, "offload pure crypto/erasure work inside each point to N pool workers (0 = inline; results and replay hashes are identical for any N)")
	fs.StringVar(&c.mode, "mode", "block", "commit mode for mode-aware experiments (quickstart): block = classic block-granularity commit, stream = streaming commit (seal→order→distribute→execute pipelined at bundle granularity); latfloor always contrasts both")
	fs.StringVar(&c.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.BoolVar(&c.replay, "replay", false, "print the delivery replay hash for supporting experiments (quickstart, recovery, byzantine, contention, latfloor); identical across -workers/-parallel settings")
	fs.BoolVar(&c.trace, "trace", false, "write Chrome trace-event JSON for supporting experiments")
	fs.StringVar(&c.traceOut, "trace-out", "", "trace output path (default <id>-trace.json)")
	fs.BoolVar(&c.metrics, "metrics", false, "write stage/metric/sample CSVs for supporting experiments")
	fs.StringVar(&c.metricsOut, "metrics-out", "", "CSV path prefix (default <id>)")
	fs.Usage = usage
	var positionals []string
	for {
		if err := fs.Parse(argv); err != nil {
			return c, nil, err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			return c, positionals, nil
		}
		positionals = append(positionals, rest[0])
		argv = rest[1:]
	}
}

func run(argv []string) int {
	c, args, err := parse(argv)
	if err != nil {
		return 2
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predis-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "predis-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if c.memProfile != "" {
		defer func() {
			f, err := os.Create(c.memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "predis-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "predis-bench: memprofile: %v\n", err)
			}
		}()
	}
	if c.mode != "block" && c.mode != "stream" {
		fmt.Fprintf(os.Stderr, "predis-bench: -mode must be block or stream, got %q\n", c.mode)
		return 2
	}
	pool := compute.NewPool(c.workers)
	defer pool.Close()
	opts := harness.Options{
		Quick: c.quick, Seed: c.seed, Workers: c.parallel, Compute: pool,
		Stream: c.mode == "stream",
	}

	switch args[0] {
	case "list":
		for _, e := range harness.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	case "all":
		for _, e := range harness.Registry() {
			if code := runOne(e, opts, c); code != 0 {
				return code
			}
		}
		return 0
	case "run":
		args = args[1:]
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "predis-bench: run needs at least one experiment id")
			return 2
		}
		fallthrough
	default:
		// Bare experiment ids: `predis-bench -quick quickstart -trace`.
		for _, id := range args {
			e, err := harness.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "predis-bench:", err)
				return 2
			}
			if code := runOne(e, opts, c); code != 0 {
				return code
			}
		}
		return 0
	}
}

func runOne(e harness.Experiment, opts harness.Options, c cli) int {
	fmt.Printf("### %s — %s\n", e.ID, e.Title)
	var sink *harness.ObsSink
	if c.trace || c.metrics {
		sink = &harness.ObsSink{}
		opts.Obs = sink
	}
	var replay *harness.ReplayTrace
	if c.replay {
		replay = harness.NewReplayTrace()
		opts.Replay = replay
	}
	start := time.Now()
	tables, err := e.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predis-bench: %s: %v\n", e.ID, err)
		return 1
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if replay != nil {
		if n := replay.Deliveries(); n > 0 {
			fmt.Printf("replay %s %s %d\n", e.ID, replay.Sum(), n)
		} else {
			fmt.Printf("replay %s unsupported\n", e.ID)
		}
	}
	if sink != nil {
		if code := export(e.ID, sink, c); code != 0 {
			return code
		}
	}
	fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	return 0
}

// export writes the observability artifacts an experiment deposited in
// the sink. Experiments without observability leave the sink empty.
func export(id string, sink *harness.ObsSink, c cli) int {
	if sink.Trace == nil {
		fmt.Printf("(%s does not support -trace/-metrics; nothing exported)\n", id)
		return 0
	}
	writeFile := func(path string, write func(f *os.File) error) int {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predis-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintf(os.Stderr, "predis-bench: write %s: %v\n", path, err)
			return 1
		}
		fmt.Printf("wrote %s\n", path)
		return 0
	}
	prefix := c.metricsOut
	if prefix == "" {
		prefix = id
	}
	if c.trace {
		path := c.traceOut
		if path == "" {
			path = id + "-trace.json"
		}
		if code := writeFile(path, func(f *os.File) error {
			return sink.Trace.WriteChrome(f, sink.Sampler)
		}); code != 0 {
			return code
		}
	}
	// The per-stage latency breakdown accompanies both flags: it is the
	// CSV companion to the trace as well as the headline metrics table.
	if c.trace || c.metrics {
		if code := writeFile(prefix+"-stages.csv", func(f *os.File) error {
			return sink.Trace.WriteStageCSV(f)
		}); code != 0 {
			return code
		}
	}
	if c.metrics {
		if sink.Metrics != nil {
			if code := writeFile(prefix+"-metrics.csv", func(f *os.File) error {
				return sink.Metrics.WriteCSV(f)
			}); code != 0 {
				return code
			}
		}
		if sink.Sampler != nil {
			if code := writeFile(prefix+"-samples.csv", func(f *os.File) error {
				return sink.Sampler.WriteCSV(f)
			}); code != 0 {
				return code
			}
			if code := writeFile(prefix+"-links.csv", func(f *os.File) error {
				return sink.Sampler.WriteLinkCSV(f)
			}); code != 0 {
				return code
			}
		}
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `predis-bench regenerates the paper's evaluation figures.

Usage:
  predis-bench [-quick] [-seed N] list
  predis-bench [-quick] [-seed N] run <id>...
  predis-bench [-quick] [-seed N] all
  predis-bench [-quick] [-seed N] <id>... [-trace] [-metrics]

Observability (quickstart, recovery):
  -trace writes Chrome trace-event JSON plus the stage-latency CSV;
  -metrics writes stage-latency, metric, NIC/queue-sample, and per-link
  byte CSVs. Flags and ids may be interleaved.

Flags:
  -quick         shrink durations and sweeps (~1 minute total)
  -seed N        simulation seed (default 1)
  -parallel N    run up to N experiment points concurrently (wall-clock
                 only; every point owns its own simulation, so results
                 and replay hashes match -parallel 1 exactly)
  -workers N     offload pure crypto/erasure work inside each point to a
                 pool of N workers (0 = inline; composes with -parallel;
                 results and replay hashes are identical for any N)
  -mode M        block (default) or stream. Stream switches mode-aware
                 experiments (quickstart) to streaming commit: bundles
                 seal per transaction, consensus orders bundle-chain
                 cursor advances, Multi-Zone distributes speculatively at
                 proposal time, execution merges per bundle. latfloor
                 contrasts both modes regardless of -mode.
  -trace         write Chrome trace-event JSON + stage-latency CSV
  -trace-out P   trace output path (default <id>-trace.json)
  -metrics       write stage/metric/sample/link CSVs
  -metrics-out P CSV path prefix (default <id>)
  -replay        print "replay <id> <sha256> <deliveries>" for supporting
                 experiments (quickstart, recovery, byzantine, contention, latfloor);
                 the hash is identical for any -workers/-parallel setting
  -cpuprofile P  write a CPU profile (inspect with go tool pprof)
  -memprofile P  write a heap profile at exit
`)
}
