// Command predis-bench regenerates the paper's evaluation figures
// (§V, Figs. 4–8) from the simulated testbed, plus the crash-recovery
// experiment (scripted relayer and leader crash/restart).
//
// Usage:
//
//	predis-bench [-quick] [-seed N] list
//	predis-bench [-quick] [-seed N] run <experiment-id>...
//	predis-bench [-quick] [-seed N] all
//
// Experiment ids: fig4a fig4b fig4c fig4d fig5wan fig5lan fig6 fig7 fig8
// recovery.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"predis/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "shrink durations and sweeps (~1 minute total)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	opts := harness.Options{Quick: *quick, Seed: *seed}

	switch args[0] {
	case "list":
		for _, e := range harness.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	case "all":
		for _, e := range harness.Registry() {
			if code := runOne(e, opts); code != 0 {
				return code
			}
		}
		return 0
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "predis-bench: run needs at least one experiment id")
			return 2
		}
		for _, id := range args[1:] {
			e, err := harness.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "predis-bench:", err)
				return 2
			}
			if code := runOne(e, opts); code != 0 {
				return code
			}
		}
		return 0
	default:
		usage()
		return 2
	}
}

func runOne(e harness.Experiment, opts harness.Options) int {
	fmt.Printf("### %s — %s\n", e.ID, e.Title)
	start := time.Now()
	tables, err := e.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predis-bench: %s: %v\n", e.ID, err)
		return 1
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `predis-bench regenerates the paper's evaluation figures.

Usage:
  predis-bench [-quick] [-seed N] list
  predis-bench [-quick] [-seed N] run <id>...
  predis-bench [-quick] [-seed N] all

Flags:
`)
	flag.PrintDefaults()
}
