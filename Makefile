# Same gates as .github/workflows/ci.yml.

.PHONY: all build vet test race fmt bench ci

all: ci

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

bench:
	go test -bench=. -benchmem

ci: fmt build vet race
