# Same gates as .github/workflows/ci.yml.

.PHONY: all build vet lint test race fmt bench ci

all: ci

build:
	go build ./...

vet:
	go vet ./...

# predis-lint: the repo's own go/analysis suite (tools/analyzers). It
# enforces the simnet determinism contract, wire round-trip symmetry,
# lock discipline in sim-visible code, and dropped-error hygiene on
# wire/rtnet/ledger paths. Also usable as: go vet -vettool=$(shell
# pwd)/bin/predis-lint ./... after `go build -o bin/predis-lint
# ./cmd/predis-lint`.
lint:
	go run ./cmd/predis-lint ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

bench:
	go test -bench=. -benchmem

ci: fmt build vet lint race
