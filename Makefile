# Same gates as .github/workflows/ci.yml.

.PHONY: all build vet lint lint-fast test race fmt bench bench-kernels bench-e2e bench-scale bench-stream bench-smoke replay-smoke trace-smoke fuzz-smoke byz-smoke exec-smoke scale-smoke stream-smoke ci

# The kernel micro-benchmark set (bench_kernels_test.go at the repo
# root): simnet scheduling, wire framing, erasure coding, merkle, and
# signature hot paths.
KERNEL_BENCH = BenchmarkSimnet|BenchmarkWire|BenchmarkErasure|BenchmarkMerkle|BenchmarkEd25519|BenchmarkHashConcat

all: ci

build:
	go build ./...

vet:
	go vet ./...

# predis-lint: the repo's own go/analysis suite (tools/analyzers). The
# per-function analyzers enforce the simnet determinism contract, wire
# round-trip symmetry, lock discipline in sim-visible code, and
# dropped-error hygiene; the interprocedural analyzers (detflow,
# hotalloc, handlercomplete) chase taint and allocations through the
# whole-program call graph. Also usable as: go vet -vettool=$(shell
# pwd)/bin/predis-lint ./... after `go build -o bin/predis-lint
# ./cmd/predis-lint`.
lint:
	go run ./cmd/predis-lint ./...

# lint-fast: lint only the packages whose Go files changed vs
# origin/main (committed, staged, or untracked). Fixture packages under
# testdata carry intentional violations and are skipped; when
# origin/main is unavailable (fresh or shallow clone) the full suite
# runs instead. Note the interprocedural analyzers still load each
# changed package's dependencies, so cross-package taint is intact —
# only unrelated packages are skipped.
lint-fast:
	@base=$$(git merge-base origin/main HEAD 2>/dev/null); \
	if [ -z "$$base" ]; then \
		echo "lint-fast: origin/main unavailable, running full suite"; \
		go run ./cmd/predis-lint ./...; exit $$?; \
	fi; \
	pkgs=$$( { git diff --name-only "$$base" HEAD -- '*.go'; \
	           git diff --name-only -- '*.go'; \
	           git ls-files --others --exclude-standard -- '*.go'; } \
		| xargs -r -n1 dirname | sort -u | grep -v testdata \
		| while read -r d; do [ -d "$$d" ] && echo "./$$d"; done; true); \
	if [ -z "$$pkgs" ]; then \
		echo "lint-fast: no changed Go packages vs origin/main"; exit 0; \
	fi; \
	echo "lint-fast:" $$pkgs; \
	go run ./cmd/predis-lint $$pkgs

test:
	go test ./...

race:
	go test -race ./...

fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

# bench: kernel micro-benchmarks, converted to BENCH_kernels.json by
# tools/benchjson so results can be committed and diffed across changes.
# Figure-level benchmarks remain available via `go test -bench=Fig`.
bench:
	go test -run '^$$' -bench '$(KERNEL_BENCH)' -benchmem . \
		| go run ./tools/benchjson -o BENCH_kernels.json
	@echo wrote BENCH_kernels.json

# bench-e2e: end-to-end wall-clock benchmarks (bench_e2e_test.go) over
# whole experiments at compute-pool worker counts 0/1/4, converted to
# BENCH_e2e.json so the offload speedup (the workers=0 vs workers=4
# ratio of the same experiment) is committed and diffable. The "cpus"
# metric in each row records how much hardware parallelism was
# available when the numbers were taken.
bench-e2e:
	go test -run '^$$' -bench 'BenchmarkE2E' -benchmem . \
		| go run ./tools/benchjson -o BENCH_e2e.json
	@echo wrote BENCH_e2e.json

# bench-scale: the population-scale benchmark pair (bench_scale_test.go)
# — the naive shape (one workload.Client and star-copy fan-out per
# logical client) against the aggregated-flow + shared-tree shape at 1k
# and 10k nodes — converted to BENCH_scale.json so the allocs/op ratio
# between ScaleNaive1k and ScaleFlow1k stays committed and diffable.
bench-scale:
	go test -run '^$$' -bench 'BenchmarkScale' -benchmem . \
		| go run ./tools/benchjson -o BENCH_scale.json
	@echo wrote BENCH_scale.json

# bench-stream: the streaming-commit benchmark set (bench_stream_test.go)
# — block vs stream on the latfloor LAN point (the confirmed-mean-ms
# metric records the virtual-time latency cut next to the wall-clock
# cost), plus the quick latfloor grid and the streaming quickstart —
# converted to BENCH_stream.json so both dimensions stay committed and
# diffable.
bench-stream:
	go test -run '^$$' -bench 'BenchmarkStream' -benchmem . \
		| go run ./tools/benchjson -o BENCH_stream.json
	@echo wrote BENCH_stream.json

# stream-smoke: the streaming-commit gate, two halves. First the latency-
# floor headline and the stream determinism tests under the race
# detector: on LAN at equal load, streaming commit must cut mean and p99
# confirmed latency ≥40% vs block mode with committed throughput within
# 5%, and stream replay hashes must be invariant across compute-pool
# sizes. Then replaydiff cross-process: the latfloor grid and a
# streaming quickstart must be byte-identical between -workers 0 and
# -workers 4 -parallel 2 runs in separate processes. Block-mode output
# stays guarded by replay-smoke — the default -mode block schedule is
# untouched by the streaming machinery.
stream-smoke:
	go test -race -run 'TestStream|TestLatencyFloor' ./internal/harness/
	go run ./tools/replaydiff latfloor
	go run ./tools/replaydiff quickstart -mode stream

# scale-smoke: the population-scale CI gate — the quick scale sweep
# (N ∈ {100, 1k, 10k}, four tree shapes each, aggregated client flows)
# must finish inside a 60 s budget. Before flow aggregation and the
# dense-index simnet paths, the 10k points alone blew through this.
scale-smoke:
	@mkdir -p bin
	go build -o bin/predis-bench ./cmd/predis-bench
	timeout 60 ./bin/predis-bench -quick -parallel 4 scale >/dev/null
	@echo scale-smoke: quick sweep finished inside the 60s budget

# bench-smoke: the CI gate — every kernel benchmark must run (once) and
# the benchjson converter must accept the output. The E2E set rides
# along at one iteration so regressions in experiment wiring surface
# here, not only in the slower `make bench-e2e`.
bench-smoke:
	go test -run '^$$' -bench '$(KERNEL_BENCH)' -benchtime=1x -benchmem . \
		| go run ./tools/benchjson -o /dev/null
	go test -run '^$$' -bench 'BenchmarkE2E' -benchtime=1x . \
		| go run ./tools/benchjson -o /dev/null
	go test -run '^$$' -bench 'BenchmarkStream' -benchtime=1x . \
		| go run ./tools/benchjson -o /dev/null

# replay-smoke: the compute-plane determinism gate — the replay hash,
# delivery count, and experiment results must be byte-identical across
# -workers 0/1/4, both in-process and across child processes (re-exec),
# with the race detector watching the pool. Also replays quickstart via
# predis-bench at -workers 4 -parallel 2 and diffs its replay hash
# against a -workers 0 run of the same binary.
replay-smoke:
	go test -race -run 'TestReplayWorkers' ./internal/harness/
	go run ./tools/replaydiff

# fuzz-smoke: a short coverage-guided run of the wire frame-decoding
# fuzzer on top of its checked-in seed corpus (testdata/fuzz). Unmarshal
# guards every receive path, so "never panics, consumes one frame,
# re-marshals canonically" gets continuous adversarial pressure, not just
# the fixed seeds.
fuzz-smoke:
	go test ./internal/wire/ -run '^$$' -fuzz FuzzUnmarshal -fuzztime 10s

# byz-smoke: the Byzantine-robustness gate, two halves. First the
# byzantine experiment under the race detector: scripted data-plane
# adversaries (stripe corruption, withholding, garbage frames, leader
# equivocation) must be detected by the right counters and outrun —
# post-attack throughput within 5% of baseline — while the Eq. 4 sweep
# tracks the paper's delivery-probability prediction. Then replaydiff on
# the recovery experiment: with an empty Byzantine schedule the hardening
# hooks must leave every existing replay hash byte-identical.
byz-smoke:
	go run -race ./cmd/predis-bench -quick byzantine >/dev/null
	go run ./tools/replaydiff recovery

# exec-smoke: the execution-plane gate, two halves. First the executor
# and ledger under the race detector: dependency leveling, worker-count
# invariance of state roots, serial-vs-parallel equality, and the
# write-before-visibility ordering of ledger.Append. Then replaydiff on
# the contention experiment: replay hash, per-height state roots, and
# terminal output must be byte-identical between -workers 0 and
# -workers 4 in separate processes.
exec-smoke:
	go test -race ./internal/exec/ ./internal/ledger/
	go test -race -run 'TestContention' ./internal/harness/
	go run ./tools/replaydiff contention

# trace-smoke: run the quickstart experiment with -trace and validate the
# emitted Chrome trace JSON parses and records at least one span for every
# pipeline stage (submit, bundle_sealed, block_proposed, prepare_commit,
# executed, stripe_distributed, fullnode_delivered).
trace-smoke:
	@mkdir -p bin
	go run ./cmd/predis-bench -quick quickstart -trace -trace-out bin/trace-smoke.json -metrics-out bin/trace-smoke >/dev/null
	go run ./tools/tracecheck bin/trace-smoke.json
	@rm -f bin/trace-smoke.json bin/trace-smoke-stages.csv

ci: fmt build vet lint race trace-smoke bench-smoke replay-smoke fuzz-smoke byz-smoke exec-smoke scale-smoke stream-smoke
